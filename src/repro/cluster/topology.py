"""Cluster topology: devices grouped into nodes with hierarchical bandwidth.

The paper's experiments run on a 4-node cluster with 8 A100 GPUs per node.
GPUs within a node are connected by NVLink (300 GB/s unidirectional) and nodes
are connected by InfiniBand (800 Gbps = 100 GB/s).  The planner's cost model
(Sec. 3.2) needs two primitives from the topology:

* ``bw(i, j)`` -- the bandwidth of the link used when device ``i`` sends data
  to device ``j`` (intra-node or inter-node).
* ``node(i)`` -- the node hosting device ``i`` (used by the topology-aware
  lite-routing and relocation algorithms).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, List, Sequence

import numpy as np

from repro.cluster.device import A100_SPEC, DeviceSpec


class LinkType(Enum):
    """Kind of link connecting a pair of devices."""

    LOCAL = "local"
    INTRA_NODE = "intra_node"
    INTER_NODE = "inter_node"


#: Integer codes used by :meth:`ClusterTopology.link_type_matrix`; the code of
#: a link kind is its index in this tuple.
LINK_TYPE_ORDER = (LinkType.LOCAL, LinkType.INTRA_NODE, LinkType.INTER_NODE)


_GB = 1024.0 ** 3

#: Intra-node unidirectional bandwidth used in the paper (NVLink, 300 GB/s).
DEFAULT_INTRA_NODE_BANDWIDTH = 300.0 * _GB
#: Inter-node unidirectional bandwidth used in the paper (800 Gbps InfiniBand).
DEFAULT_INTER_NODE_BANDWIDTH = 100.0 * _GB
#: Fixed per-message latency (seconds) for intra-node transfers.
DEFAULT_INTRA_NODE_LATENCY = 3e-6
#: Fixed per-message latency (seconds) for inter-node transfers.
DEFAULT_INTER_NODE_LATENCY = 12e-6


@dataclass
class ClusterTopology:
    """A two-level (node / device) cluster topology.

    Attributes:
        num_nodes: Number of nodes in the cluster.
        devices_per_node: Number of accelerators in every node.
        intra_node_bandwidth: Unidirectional intra-node bandwidth in bytes/s.
        inter_node_bandwidth: Unidirectional inter-node bandwidth in bytes/s.
        intra_node_latency: Per-message latency for intra-node transfers (s).
        inter_node_latency: Per-message latency for inter-node transfers (s).
        device_spec: Compute/memory specification shared by all devices.
    """

    num_nodes: int
    devices_per_node: int
    intra_node_bandwidth: float = DEFAULT_INTRA_NODE_BANDWIDTH
    inter_node_bandwidth: float = DEFAULT_INTER_NODE_BANDWIDTH
    intra_node_latency: float = DEFAULT_INTRA_NODE_LATENCY
    inter_node_latency: float = DEFAULT_INTER_NODE_LATENCY
    device_spec: DeviceSpec = field(default_factory=lambda: A100_SPEC)

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if self.devices_per_node <= 0:
            raise ValueError("devices_per_node must be positive")
        if self.intra_node_bandwidth <= 0 or self.inter_node_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.intra_node_latency < 0 or self.inter_node_latency < 0:
            raise ValueError("latencies must be non-negative")
        # Lazily built N-sized / NxN caches.  The topology is treated as
        # immutable after construction (nothing in the repo mutates link
        # parameters in place); the caches are what turns the per-pair
        # bandwidth/latency lookups of the collectives into array slicing.
        self._matrix_cache: dict = {}

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    @property
    def num_devices(self) -> int:
        """Total number of devices ``N`` in the cluster."""
        return self.num_nodes * self.devices_per_node

    def devices(self) -> Iterator[int]:
        """Iterate over global device ranks ``0..N-1``."""
        return iter(range(self.num_devices))

    def node(self, device: int) -> int:
        """Return the node index hosting global device rank ``device``."""
        self._check_device(device)
        return device // self.devices_per_node

    def devices_on_node(self, node: int) -> List[int]:
        """Return the list of global device ranks located on ``node``."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range [0, {self.num_nodes})")
        start = node * self.devices_per_node
        return list(range(start, start + self.devices_per_node))

    def same_node(self, device_a: int, device_b: int) -> bool:
        """Return True when both devices are hosted on the same node."""
        return self.node(device_a) == self.node(device_b)

    # ------------------------------------------------------------------
    # Link characteristics
    # ------------------------------------------------------------------
    def link_type(self, src: int, dst: int) -> LinkType:
        """Classify the link between ``src`` and ``dst``."""
        self._check_device(src)
        self._check_device(dst)
        if src == dst:
            return LinkType.LOCAL
        if self.same_node(src, dst):
            return LinkType.INTRA_NODE
        return LinkType.INTER_NODE

    def bandwidth(self, src: int, dst: int) -> float:
        """Return ``bw(src, dst)`` in bytes/s.

        Local (same-device) transfers are treated as infinitely fast since no
        data crosses any interconnect.
        """
        kind = self.link_type(src, dst)
        if kind is LinkType.LOCAL:
            return float("inf")
        if kind is LinkType.INTRA_NODE:
            return self.intra_node_bandwidth
        return self.inter_node_bandwidth

    def latency(self, src: int, dst: int) -> float:
        """Return the fixed message latency between ``src`` and ``dst``."""
        kind = self.link_type(src, dst)
        if kind is LinkType.LOCAL:
            return 0.0
        if kind is LinkType.INTRA_NODE:
            return self.intra_node_latency
        return self.inter_node_latency

    def p2p_time(self, src: int, dst: int, num_bytes: float) -> float:
        """Time to move ``num_bytes`` from ``src`` to ``dst`` (alpha-beta model)."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if src == dst or num_bytes == 0:
            return 0.0
        return self.latency(src, dst) + num_bytes / self.bandwidth(src, dst)

    # ------------------------------------------------------------------
    # Matrix form (cached)
    # ------------------------------------------------------------------
    def device_nodes(self) -> np.ndarray:
        """Return the cached ``(N,)`` array mapping device rank to node index."""
        cached = self._matrix_cache.get("nodes")
        if cached is None:
            cached = np.arange(self.num_devices) // self.devices_per_node
            cached.setflags(write=False)
            self._matrix_cache["nodes"] = cached
        return cached

    def _full_matrix(self, key: str, local: float, intra: float,
                     inter: float) -> np.ndarray:
        cached = self._matrix_cache.get(key)
        if cached is None:
            nodes = self.device_nodes()
            same = nodes[:, None] == nodes[None, :]
            cached = np.where(same, intra, inter)
            np.fill_diagonal(cached, local)
            cached.setflags(write=False)
            self._matrix_cache[key] = cached
        return cached

    def _sliced(self, matrix: np.ndarray,
                group: Sequence[int] | None) -> np.ndarray:
        if group is None:
            return matrix
        idx = np.asarray(group, dtype=np.intp)
        return matrix[np.ix_(idx, idx)]

    def bandwidth_matrix(self, group: Sequence[int] | None = None) -> np.ndarray:
        """Return the ``N x N`` bandwidth matrix (bytes/s), built once.

        The diagonal is ``inf`` (local copies are free in our model).  With
        ``group``, the ``(len(group), len(group))`` slice for those global
        ranks is returned; entry ``[a, b]`` is ``bw(group[a], group[b])``.
        The full matrix is cached (and read-only); group slices are fresh
        arrays.
        """
        full = self._full_matrix("bandwidth", np.inf,
                                 self.intra_node_bandwidth,
                                 self.inter_node_bandwidth)
        return self._sliced(full, group)

    def latency_matrix(self, group: Sequence[int] | None = None) -> np.ndarray:
        """Return the ``N x N`` fixed message latency matrix (seconds).

        The diagonal is 0 (no transfer).  ``group`` slices as in
        :meth:`bandwidth_matrix`.
        """
        full = self._full_matrix("latency", 0.0,
                                 self.intra_node_latency,
                                 self.inter_node_latency)
        return self._sliced(full, group)

    def link_type_matrix(self, group: Sequence[int] | None = None) -> np.ndarray:
        """Return the ``N x N`` link classification as integer codes.

        Codes index :data:`LINK_TYPE_ORDER`: 0 = LOCAL, 1 = INTRA_NODE,
        2 = INTER_NODE, i.e. ``LINK_TYPE_ORDER[mat[i, j]] is
        self.link_type(i, j)``.  ``group`` slices as in
        :meth:`bandwidth_matrix`.
        """
        cached = self._matrix_cache.get("link_type")
        if cached is None:
            nodes = self.device_nodes()
            same = nodes[:, None] == nodes[None, :]
            cached = np.where(same, 1, 2).astype(np.int8)
            np.fill_diagonal(cached, 0)
            cached.setflags(write=False)
            self._matrix_cache["link_type"] = cached
        return self._sliced(cached, group)

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def paper_cluster(cls) -> "ClusterTopology":
        """The 4-node x 8-A100 cluster used in the paper's evaluation."""
        return cls(num_nodes=4, devices_per_node=8)

    @classmethod
    def single_node(cls, devices: int = 8, **kwargs: object) -> "ClusterTopology":
        """A single-node cluster with ``devices`` accelerators."""
        return cls(num_nodes=1, devices_per_node=devices, **kwargs)  # type: ignore[arg-type]

    @classmethod
    def homogeneous(cls, num_devices: int, devices_per_node: int = 8,
                    **kwargs: object) -> "ClusterTopology":
        """Build a cluster of ``num_devices`` devices, ``devices_per_node`` per node.

        ``num_devices`` must be a multiple of ``devices_per_node`` unless it is
        smaller, in which case a single node holding all devices is returned.
        """
        if num_devices <= 0:
            raise ValueError("num_devices must be positive")
        if num_devices <= devices_per_node:
            return cls(num_nodes=1, devices_per_node=num_devices, **kwargs)  # type: ignore[arg-type]
        if num_devices % devices_per_node != 0:
            raise ValueError(
                f"num_devices ({num_devices}) must be a multiple of "
                f"devices_per_node ({devices_per_node})"
            )
        return cls(num_nodes=num_devices // devices_per_node,
                   devices_per_node=devices_per_node, **kwargs)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _check_device(self, device: int) -> None:
        if not 0 <= device < self.num_devices:
            raise ValueError(
                f"device {device} out of range [0, {self.num_devices})"
            )

    def describe(self) -> str:
        """Return a human-readable one-line description of the topology."""
        return (
            f"{self.num_nodes} node(s) x {self.devices_per_node} "
            f"{self.device_spec.name} "
            f"(intra {self.intra_node_bandwidth / _GB:.0f} GB/s, "
            f"inter {self.inter_node_bandwidth / _GB:.0f} GB/s)"
        )


def group_by_node(topology: ClusterTopology, devices: Sequence[int]) -> List[List[int]]:
    """Group a sequence of device ranks by the node that hosts them.

    Returns a list with ``topology.num_nodes`` entries; entry ``n`` contains the
    subset of ``devices`` located on node ``n`` (possibly empty), preserving the
    original order.
    """
    groups: List[List[int]] = [[] for _ in range(topology.num_nodes)]
    devs = np.asarray(list(devices), dtype=np.intp)
    if devs.size == 0:
        return groups
    if devs.min() < 0 or devs.max() >= topology.num_devices:
        raise ValueError("device rank out of range for the topology")
    for dev, node in zip(devs.tolist(), topology.device_nodes()[devs].tolist()):
        groups[node].append(dev)
    return groups
