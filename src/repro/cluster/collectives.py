"""Analytic cost models for collective communication operations.

The training systems in this repository use five collectives:

* **All-to-All** -- token dispatch/combine in expert parallelism and the FSEP
  unshard/reshard operations.  Cost is driven by the per-pair traffic matrix
  and the slowest link it crosses.
* **All-Gather** -- FSDP parameter unsharding.
* **Reduce-Scatter** -- FSDP gradient synchronisation.
* **All-Reduce** -- data-parallel gradient synchronisation and TP activations.
* **Broadcast** -- FasterMoE-style shadow-expert replication.

All models follow the alpha-beta convention: a per-message latency plus a
bandwidth term.  For ring-based collectives the bandwidth term uses the
standard ``(p - 1) / p`` factor over the slowest link in the group.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence

import numpy as np

from repro.cluster.topology import ClusterTopology


class CollectiveKind(Enum):
    """Enumeration of the supported collective operations."""

    ALL_TO_ALL = "all_to_all"
    ALL_GATHER = "all_gather"
    REDUCE_SCATTER = "reduce_scatter"
    ALL_REDUCE = "all_reduce"
    BROADCAST = "broadcast"
    POINT_TO_POINT = "point_to_point"


@dataclass
class CollectiveCostModel:
    """Estimate the wall-clock time of collective operations on a topology.

    Attributes:
        topology: The cluster topology the collectives run on.
        efficiency: Fraction of the theoretical link bandwidth that collectives
            achieve in practice (protocol overhead, imperfect overlap between
            the send and receive directions, ...).
    """

    topology: ClusterTopology
    efficiency: float = 0.85

    def __post_init__(self) -> None:
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")
        # Lazily built full-cluster 1 / (bw * efficiency) matrix; topology
        # and efficiency are fixed after construction, so the hot
        # group=None all_to_all path pays the scaling exactly once.
        self._inv_bw_eff: np.ndarray | None = None

    def _inv_bandwidth(self, slice_key) -> np.ndarray:
        """``1 / (bw * efficiency)`` for the group (cached when full)."""
        if slice_key is None:
            if self._inv_bw_eff is None:
                self._inv_bw_eff = 1.0 / (self.topology.bandwidth_matrix()
                                          * self.efficiency)
                self._inv_bw_eff.setflags(write=False)
            return self._inv_bw_eff
        return 1.0 / (self.topology.bandwidth_matrix(slice_key)
                      * self.efficiency)

    # ------------------------------------------------------------------
    # All-to-All
    # ------------------------------------------------------------------
    def all_to_all(self, traffic: np.ndarray,
                   group: Sequence[int] | None = None) -> float:
        """Time of an All-to-All described by a per-pair ``traffic`` matrix.

        Args:
            traffic: ``(len(group), len(group))`` array, where ``traffic[a, b]``
                is the number of bytes the ``a``-th group member sends to the
                ``b``-th group member.  The diagonal (local data) is ignored.
            group: Global device ranks participating in the collective.  When
                omitted, all cluster devices participate in rank order.

        Returns:
            Estimated completion time in seconds: the maximum over devices of
            the time needed to drain that device's ingress and egress traffic,
            where each byte is charged at the bandwidth of the link it crosses.
        """
        members = self._resolve_group(group)
        traffic = np.asarray(traffic, dtype=np.float64)
        if traffic.shape != (len(members), len(members)):
            raise ValueError(
                f"traffic matrix must be {(len(members), len(members))}, "
                f"got {traffic.shape}"
            )
        if np.any(traffic < 0):
            raise ValueError("traffic entries must be non-negative")

        n = len(members)
        if n == 1:
            return 0.0
        # Pure matrix form of the per-pair scan: the inverse-bandwidth
        # matrix has a 0 diagonal (1/inf -- local copies are free), so
        # local traffic contributes 0 to both drain times.  (group=None
        # passes through so full-cluster calls hit the cached matrices
        # without slicing or rescaling copies.)
        slice_key = None if group is None else members
        per_pair = traffic * self._inv_bandwidth(slice_key)
        send_time = per_pair.sum(axis=1)
        recv_time = per_pair.sum(axis=0)
        # Each sender pays the worst fixed latency among the links it
        # actually uses (the latency diagonal is 0, so local traffic and
        # idle senders contribute nothing).
        lat = self.topology.latency_matrix(slice_key)
        latency = np.where(traffic > 0, lat, 0.0).max(axis=1)
        per_device = np.maximum(send_time, recv_time) + latency
        return float(per_device.max())

    def uniform_all_to_all(self, bytes_per_pair: float,
                           group: Sequence[int] | None = None) -> float:
        """All-to-All where every device sends ``bytes_per_pair`` to every other."""
        members = self._resolve_group(group)
        n = len(members)
        traffic = np.full((n, n), float(bytes_per_pair), dtype=np.float64)
        np.fill_diagonal(traffic, 0.0)
        # Forward the caller's group (not the resolved members) so the
        # full-cluster case keeps its no-copy fast path in all_to_all.
        return self.all_to_all(traffic, group)

    # ------------------------------------------------------------------
    # Ring-style collectives
    # ------------------------------------------------------------------
    def all_gather(self, bytes_per_shard: float,
                   group: Sequence[int] | None = None) -> float:
        """Ring All-Gather of ``bytes_per_shard`` bytes per participant."""
        return self._ring_collective(bytes_per_shard, group, passes=1.0)

    def reduce_scatter(self, bytes_per_shard: float,
                       group: Sequence[int] | None = None) -> float:
        """Ring Reduce-Scatter of ``bytes_per_shard`` bytes per participant."""
        return self._ring_collective(bytes_per_shard, group, passes=1.0)

    def all_reduce(self, num_bytes: float,
                   group: Sequence[int] | None = None) -> float:
        """Ring All-Reduce of ``num_bytes`` bytes (reduce-scatter + all-gather)."""
        members = self._resolve_group(group)
        p = len(members)
        if p <= 1 or num_bytes == 0:
            return 0.0
        shard = num_bytes / p
        return self._ring_collective(shard, members, passes=2.0)

    def broadcast(self, num_bytes: float,
                  group: Sequence[int] | None = None) -> float:
        """Broadcast ``num_bytes`` from the first group member to the rest.

        Modelled as a pipelined chain: the payload traverses the slowest link
        once (large-message regime).
        """
        members = self._resolve_group(group)
        if len(members) <= 1 or num_bytes == 0:
            return 0.0
        slowest = self._slowest_bandwidth(members)
        latency = self._max_latency(members)
        return latency + num_bytes / (slowest * self.efficiency)

    def point_to_point(self, src: int, dst: int, num_bytes: float) -> float:
        """Single point-to-point transfer (e.g. pipeline-parallel activations)."""
        if num_bytes == 0 or src == dst:
            return 0.0
        bw = self.topology.bandwidth(src, dst) * self.efficiency
        return self.topology.latency(src, dst) + num_bytes / bw

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _ring_collective(self, bytes_per_shard: float,
                         group: Sequence[int] | None, passes: float) -> float:
        members = self._resolve_group(group)
        p = len(members)
        if p <= 1 or bytes_per_shard == 0:
            return 0.0
        slowest = self._slowest_bandwidth(members)
        latency = self._max_latency(members)
        # In a ring collective every rank sends one shard per step for p-1
        # steps (per pass), all ranks concurrently, so the completion time is
        # governed by the per-rank traffic (p-1) * shard over the slowest link.
        per_device = passes * (p - 1) * bytes_per_shard
        return passes * (p - 1) * latency + per_device / (slowest * self.efficiency)

    def _spans_nodes(self, members: Sequence[int]) -> bool:
        """Whether the group touches more than one node (vectorized scan)."""
        nodes = self.topology.device_nodes()[np.asarray(members, dtype=np.intp)]
        return bool((nodes != nodes[0]).any())

    def _slowest_bandwidth(self, members: Sequence[int]) -> float:
        if self._spans_nodes(members):
            return self.topology.inter_node_bandwidth
        return self.topology.intra_node_bandwidth

    def _max_latency(self, members: Sequence[int]) -> float:
        if self._spans_nodes(members):
            return self.topology.inter_node_latency
        return self.topology.intra_node_latency

    def _resolve_group(self, group: Sequence[int] | None) -> np.ndarray:
        if group is None:
            return np.arange(self.topology.num_devices, dtype=np.intp)
        members = np.asarray(group, dtype=np.intp).reshape(-1)
        if members.size == 0:
            raise ValueError("group must not be empty")
        if np.unique(members).size != members.size:
            raise ValueError("group contains duplicate devices")
        bad = (members < 0) | (members >= self.topology.num_devices)
        if bad.any():
            raise ValueError(
                f"device {int(members[bad][0])} not in topology")
        return members
