"""Command-line interface for the LAER-MoE reproduction.

Provides quick access to the most common workflows without writing Python:

* ``repro models`` -- print the Table 2 model registry;
* ``repro systems`` -- print the registered training systems;
* ``repro scenarios`` -- print the registered routing scenarios;
* ``repro trace`` -- generate (and optionally save) a synthetic routing trace
  and print its summary statistics;
* ``repro trace record|export`` -- observability (see
  :mod:`repro.telemetry`): re-run any repro command with the cross-process
  tracer armed, collecting span events from the coordinator and every
  worker process it spawns, then merge the per-process event files and
  export Chrome trace-event JSON (viewable in Perfetto or
  chrome://tracing) plus a per-phase time breakdown::

      repro trace record --dir .repro-trace -- fleet run \
        sweep-cluster-sizes --store ./study-store --workers 2
      repro trace export --dir .repro-trace --output trace.json

* ``repro compare`` -- simulate the compared training systems on a
  model/cluster/scenario combination and print throughput, speedups and the
  time breakdown;
* ``repro plan`` -- run the load-balancing planner over a trace and print
  per-iteration balance (aggregated over all MoE layers) against the static
  EP layout;
* ``repro run`` -- execute a declarative :class:`repro.api.ExperimentSpec`,
  either loaded from a JSON file (``--spec exp.json``) or assembled from the
  command-line flags; ``--dump-spec`` writes the spec instead of running it;
* ``repro studies`` -- print the registered study definitions;
* ``repro study run|ls|diff|report|gate`` -- the sweep workflow: expand a
  :class:`repro.study.StudySpec` (a registered name such as
  ``sweep-cluster-sizes``, or a JSON file) into its experiment grid, execute
  it into a persistent :class:`repro.store.ResultStore` (cells already in
  the store are skipped, so re-running is a cheap no-op), then list the
  stored runs, diff two of them metric-by-metric, render a markdown
  report, or gate CI on regressions against a stored baseline::

      repro study run sweep-cluster-sizes --store ./study-store \
        --param sizes='[1,2,4]'
      repro study ls --store ./study-store
      repro study diff --store ./study-store RUN_A RUN_B
      repro study report --store ./study-store --study sweep-cluster-sizes
      repro study gate --store ./study-store --baseline baseline  # exit 1
                                                                  # on regression

* ``repro suite make|ls|characterize|report|search`` -- versioned scenario
  suites (see :mod:`repro.suite`): emit the curated default suite, list its
  members, characterize each member's workload (imbalance spectrum, churn,
  burstiness, drift velocity, hot concentration) with a coverage report, or
  run the adversarial search for scenarios maximizing a target system's
  regret vs the oracle -- winners graduate into the next suite version::

      repro suite make --output suites/default-v1.json
      repro suite characterize suites/default-v1.json
      repro suite search suites/default-v1.json --store ./suite-store \
        --target static_ep --budget 16 --graduate suites/default-v2.json

* ``repro fleet run|status|workers|watch`` -- multi-process sweep
  execution: the same grid, drained by N cooperating worker processes
  through a file-based work queue (lease files with heartbeats; crashed
  workers' cells are reclaimed) into one shared store (safe: the store's
  index is an append-only journal); ``watch`` is a live view of queue
  depth, per-worker heartbeat ages and the completed-cell rate::

      repro fleet run sweep-cluster-sizes --store ./study-store --workers 4
      repro fleet status  --store ./study-store
      repro fleet workers --store ./study-store
      repro fleet watch   --store ./study-store --interval 2

  ``repro study run --workers N`` is a shortcut for ``fleet run``.

* ``repro serve`` -- the serving tier: a long-lived daemon answering
  ExperimentSpec/StudySpec submissions over HTTP (or a Unix socket) straight
  from the result cache -- the content-hashed run id is the memo key, so
  anything ever stored is a cache hit; misses run once on a resident
  executor, and identical concurrent submissions coalesce onto a single
  execution (see :mod:`repro.serve`); the unified metrics registry is
  scrapeable in Prometheus text format at ``GET /metrics``::

      repro serve --store ./study-store --port 8351
      repro serve --store ./study-store --unix-socket /tmp/repro.sock

* ``repro submit`` -- client for a running daemon: submit a spec (a JSON
  file, or assembled from the same flags ``repro run`` takes), query
  ``--status``, or ask for a graceful ``--shutdown``::

      repro submit --address 127.0.0.1:8351 --scenario bursty --iterations 8
      repro submit --address 127.0.0.1:8351 --spec exp.json --no-wait

* ``repro calib measure|fit|report|apply`` -- calibrate the analytic cost
  model against measured link/kernel/All-to-All timings (see
  :mod:`repro.calib`): ``measure`` runs the seeded microbenchmark schedule
  against a hidden ground-truth machine and writes observation CSVs (real
  measurements in the same CSV shape work too), ``fit`` recovers per-link
  bandwidth scales, latency intercepts, the FLOPs efficiency and the
  per-token byte overhead as a content-hashed
  :class:`repro.calib.CalibrationProfile`, ``report`` renders the
  goodness-of-fit report (per-term R², MAPE, worst-fit links), and
  ``apply`` embeds the profile into an ExperimentSpec so every downstream
  run simulates the calibrated machine::

      repro calib measure --output ./calib-obs --num-nodes 2
      repro calib fit --observations ./calib-obs --output profile.json \
        --min-r2 0.99
      repro calib report --observations ./calib-obs
      repro calib apply --profile profile.json --spec exp.json \
        --output exp_calibrated.json

* ``repro store ls|compact|rebuild`` -- store maintenance without Python
  one-liners: list stored runs, fold the append-only index journal into
  ``index.json``, or regenerate the index from the run files (the truth);
  ``ls --stats`` also reports the store's telemetry counters (index cache
  hits/misses, journal lines, auto-compactions) from the metrics registry.

Exit codes (uniform across commands): **0** success; **1** execution or
gate failure (a submitted run failed, ``study gate`` tripped, a fleet cell
failed); **2** usage/environment errors (bad flags or spec, missing store,
unreachable daemon).

Workloads are scenarios: ``run``, ``compare``, ``plan`` and ``trace`` accept
``--scenario`` (any name from ``repro scenarios``) plus repeatable
``--param key=value`` scenario knobs, e.g.::

    repro compare --scenario bursty-churn --param period=20

Every simulation flows through :class:`repro.api.ExperimentRunner`, which
executes the compared systems in parallel worker processes by default
(``--sequential`` disables this), so ``repro compare`` and ``repro run`` on
an equivalent spec produce identical numbers.  (``python -m repro.cli``
works too; the ``repro`` console script is installed by the package
metadata.)
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import shutil
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.reporting import (
    format_phase_breakdown,
    format_run_diff,
    format_study_report,
    format_table,
    print_report,
)
from repro.api import (
    ClusterSpec,
    ExperimentResult,
    ExperimentRunner,
    ExperimentSpec,
    WorkloadSpec,
    run_planner_study,
)
from repro.calib import (
    GroundTruthMachine,
    MeasureConfig,
    ObservationSet,
    fit_calibration,
    run_microbenchmarks,
)
from repro.calib.profile import CalibrationProfile
from repro.calib.report import fit_report, fit_summary_line
from repro.chaos import (
    FAULT_POINTS,
    PLAN_DESCRIPTIONS,
    PLAN_NAMES,
    WORKER_CRASH_POINTS,
    CircuitBreaker,
    RetryPolicy,
)
from repro.cluster.topology import ClusterTopology
from repro.fleet import QUEUE_DIR_NAME, WorkQueue, launch_fleet
from repro.serve import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    FallbackExecutor,
    FleetQueueExecutor,
    PoolExecutor,
    ReproServer,
    ServeClient,
    ServeUnavailable,
)
from repro.sim.systems import available_systems, system_descriptions
from repro.store import (
    AUTO_COMPACT_BYTES,
    AUTO_COMPACT_LINES,
    DIFF_METRICS,
    IndexEntry,
    ResultStore,
)
from repro.study import (
    StudyCellError,
    StudyRunner,
    StudySpec,
    StudyStoreError,
    make_study,
    study_descriptions,
)
from repro.telemetry.metrics import REGISTRY as METRICS_REGISTRY
from repro.telemetry.trace import (
    TRACE_DIR_ENV,
    TRACE_ID_ENV,
    TRACE_PARENT_ENV,
    Tracer,
    export_chrome_trace,
    export_env as trace_export_env,
    install as trace_install,
    phase_breakdown,
    read_events,
    span as trace_span,
    uninstall as trace_uninstall,
)
from repro.sim.iteration import DROP_POLICIES
from repro.suite import (
    SuiteCharacterization,
    SuiteSpec,
    adversarial_search,
    characterize_suite,
    default_suite,
    format_suite_report,
    graduate,
)
from repro.workloads.model_configs import get_model_config, list_model_configs
from repro.workloads.scenarios import (
    available_scenario_wrappers,
    available_scenarios,
    registered_scenario,
    registered_scenario_wrapper,
    scenario_descriptions,
)
from repro.workloads.trace_io import save_trace, summarize_trace


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="LAER-MoE reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the Table 2 model configurations")
    sub.add_parser("systems", help="list the registered training systems")
    scenarios = sub.add_parser(
        "scenarios", help="list the registered routing scenarios")
    scenarios.add_argument("--verbose", "-v", action="store_true",
                           help="also print each scenario's parameters with "
                                "types and defaults")

    trace = sub.add_parser(
        "trace",
        help="generate a synthetic routing trace, or record/export a "
             "cross-process telemetry trace")
    _add_common_workload_args(trace)
    trace.add_argument("--iterations", type=int, default=20)
    trace.add_argument("--output", type=str, default=None,
                       help="optional .npz path to save the trace to")
    # Optional subcommands: plain `repro trace` keeps its original
    # synthetic-routing-trace behaviour (trace_command is None then).
    trsub = trace.add_subparsers(
        dest="trace_command", required=False, metavar="{record,export}",
        help="telemetry tracing (omit for the synthetic routing trace)")
    trace_record = trsub.add_parser(
        "record",
        help="run a repro command with the tracer armed, collecting span "
             "events from every process it spawns")
    trace_record.add_argument("--dir", dest="trace_dir", type=str,
                              default=".repro-trace", metavar="DIR",
                              help="trace event directory "
                                   "(default: .repro-trace)")
    trace_record.add_argument("rest", nargs=argparse.REMAINDER,
                              metavar="-- COMMAND ...",
                              help="the repro command line to trace, e.g. "
                                   "-- fleet run sweep-cluster-sizes ...")
    trace_export = trsub.add_parser(
        "export",
        help="merge recorded span events into Chrome trace-event JSON "
             "plus a per-phase time breakdown")
    trace_export.add_argument("--dir", dest="trace_dir", type=str,
                              default=".repro-trace", metavar="DIR",
                              help="trace event directory "
                                   "(default: .repro-trace)")
    trace_export.add_argument("--output", type=str, default=None,
                              metavar="PATH",
                              help="Chrome trace JSON path "
                                   "(default: <dir>/trace.json)")

    compare = sub.add_parser("compare", help="simulate the training systems")
    _add_common_workload_args(compare)
    _add_simulation_args(compare)

    plan = sub.add_parser("plan", help="run the planner over a trace")
    _add_common_workload_args(plan)
    plan.add_argument("--iterations", type=int, default=6)

    run = sub.add_parser(
        "run", help="run a declarative experiment spec end to end")
    _add_common_workload_args(run)
    _add_simulation_args(run)
    run.add_argument("--name", type=str, default="experiment",
                     help="experiment name recorded in the spec/result")
    run.add_argument("--spec", type=str, default=None,
                     help="JSON experiment spec to run (overrides the "
                          "workload/system flags)")
    run.add_argument("--dump-spec", type=str, default=None, metavar="PATH",
                     help="write the experiment spec as JSON to PATH "
                          "('-' for stdout) and exit without running")
    run.add_argument("--output", type=str, default=None,
                     help="optional path to save the JSON experiment result")

    sub.add_parser("studies", help="list the registered study definitions")

    study = sub.add_parser(
        "study", help="run sweeps into a persistent result store")
    ssub = study.add_subparsers(dest="study_command", required=True)

    study_run = ssub.add_parser(
        "run", help="expand a study into its grid and execute it (resumable)")
    study_run.add_argument("study",
                           help="registered study name (see 'repro studies') "
                                "or a StudySpec JSON file")
    _add_store_arg(study_run)
    study_run.add_argument("--param", action="append", default=[],
                           metavar="KEY=VALUE",
                           help="study parameter override, repeatable "
                                "(e.g. --param sizes='[1,2,4]')")
    study_run.add_argument("--tag", action="append", default=[],
                           help="extra tag stored on every cell run, "
                                "repeatable")
    study_run.add_argument("--sequential", action="store_true",
                           help="execute grid cells one after another "
                                "instead of in parallel worker processes")
    study_run.add_argument("--workers", type=int, default=0, metavar="N",
                           help="fast path to 'repro fleet run': drain the "
                                "grid with N cooperating worker processes "
                                "(0 = in-process StudyRunner)")
    study_run.add_argument("--no-resume", action="store_true",
                           help="re-execute cells even when their run is "
                                "already in the store")
    study_run.add_argument("--dump-spec", type=str, default=None,
                           metavar="PATH",
                           help="write the expanded StudySpec as JSON to "
                                "PATH ('-' for stdout) and exit without "
                                "running")

    study_ls = ssub.add_parser("ls", help="list the runs stored in a store")
    _add_store_arg(study_ls)
    study_ls.add_argument("--name", type=str, default=None,
                          help="filter by experiment name ('prefix*' allowed)")
    study_ls.add_argument("--system", type=str, default=None,
                          help="filter by system key")
    study_ls.add_argument("--scenario", type=str, default=None,
                          help="filter by routing scenario")
    study_ls.add_argument("--cluster-size", type=int, default=None,
                          help="filter by total device count")
    study_ls.add_argument("--tag", type=str, default=None,
                          help="filter by tag")

    study_diff = ssub.add_parser(
        "diff", help="per-system, per-metric deltas between two stored runs")
    study_diff.add_argument("run_a", help="base run id")
    study_diff.add_argument("run_b", help="other run id")
    _add_store_arg(study_diff)

    study_report = ssub.add_parser(
        "report", help="render the stored runs of a study as markdown")
    _add_store_arg(study_report)
    study_report.add_argument("--study", type=str, default=None,
                              help="restrict to runs of one study "
                                   "(tag 'study:<name>')")
    study_report.add_argument("--tag", type=str, default=None,
                              help="restrict to runs carrying a tag")
    study_report.add_argument("--baseline", type=str, default=None,
                              help="also report regressions against runs "
                                   "tagged with this baseline tag")
    study_report.add_argument("--output", type=str, default=None,
                              help="write the markdown report to a file "
                                   "instead of stdout")
    study_report.add_argument("--trace", type=str, default=None,
                              metavar="DIR",
                              help="telemetry trace directory (from 'repro "
                                   "trace record') whose per-phase time "
                                   "breakdown is appended as a section")

    study_gate = ssub.add_parser(
        "gate", help="exit nonzero when stored runs regressed vs a baseline")
    _add_store_arg(study_gate)
    study_gate.add_argument("--baseline", type=str, required=True,
                            help="baseline tag the candidates are compared "
                                 "against (see 'repro study run --tag')")
    study_gate.add_argument("--study", type=str, default=None,
                            help="restrict the gate to runs of one study "
                                 "(tag 'study:<name>')")
    study_gate.add_argument("--metric", action="append", default=[],
                            help="metric to gate on, repeatable "
                                 "(default: throughput)")
    study_gate.add_argument("--threshold", type=float, default=0.05,
                            help="relative change beyond which a metric "
                                 "counts as regressed (default: 0.05)")

    suite = sub.add_parser(
        "suite", help="versioned scenario suites: characterize, report, "
                      "adversarial search")
    susub = suite.add_subparsers(dest="suite_command", required=True)

    suite_make = susub.add_parser(
        "make", help="emit the curated default suite as JSON")
    suite_make.add_argument("--output", type=str, default=None, metavar="PATH",
                            help="write the suite JSON to PATH instead of "
                                 "stdout")

    suite_ls = susub.add_parser("ls", help="list a suite's members")
    suite_ls.add_argument("suite", help="SuiteSpec JSON file")

    suite_char = susub.add_parser(
        "characterize",
        help="stream every member and compute its workload metrics")
    suite_char.add_argument("suite", help="SuiteSpec JSON file")
    suite_char.add_argument("--num-nodes", type=int, default=1)
    suite_char.add_argument("--devices-per-node", type=int, default=8)
    suite_char.add_argument("--output", type=str, default=None, metavar="PATH",
                            help="write the characterization JSON to PATH "
                                 "(default: render the report to stdout)")

    suite_report = susub.add_parser(
        "report", help="render a suite characterization as markdown")
    suite_report.add_argument("suite", help="SuiteSpec JSON file")
    suite_report.add_argument("--characterization", type=str, default=None,
                              metavar="PATH",
                              help="reuse a saved characterization JSON "
                                   "instead of recomputing")
    suite_report.add_argument("--num-nodes", type=int, default=1)
    suite_report.add_argument("--devices-per-node", type=int, default=8)
    suite_report.add_argument("--output", type=str, default=None,
                              metavar="PATH",
                              help="write the markdown report to a file "
                                   "instead of stdout")

    suite_search = susub.add_parser(
        "search",
        help="adversarial search: find scenarios maximizing a system's "
             "regret vs the oracle")
    suite_search.add_argument("suite", help="SuiteSpec JSON file")
    _add_store_arg(suite_search)
    suite_search.add_argument("--target", type=str, default="static_ep",
                              choices=available_systems(),
                              help="system whose regret the search maximizes "
                                   "(default: static_ep)")
    suite_search.add_argument("--budget", type=int, default=16, metavar="N",
                              help="total candidate evaluations, members "
                                   "included (default: 16)")
    suite_search.add_argument("--seed", type=int, default=0,
                              help="search PRNG seed (same seed + suite + "
                                   "store contents => identical winner)")
    suite_search.add_argument("--num-nodes", type=int, default=1)
    suite_search.add_argument("--devices-per-node", type=int, default=8)
    suite_search.add_argument("--graduate", type=str, default=None,
                              metavar="PATH",
                              help="write the next suite version (winner "
                                   "admitted as a member) to PATH")
    suite_search.add_argument("--quiet", action="store_true",
                              help="suppress per-candidate progress lines")

    fleet = sub.add_parser(
        "fleet", help="multi-process sweep execution over a shared store")
    fsub = fleet.add_subparsers(dest="fleet_command", required=True)

    fleet_run = fsub.add_parser(
        "run", help="drain a study's grid with N worker processes")
    fleet_run.add_argument("study",
                           help="registered study name (see 'repro studies') "
                                "or a StudySpec JSON file")
    _add_store_arg(fleet_run)
    fleet_run.add_argument("--workers", type=int, default=2, metavar="N",
                           help="number of worker processes (default: 2)")
    fleet_run.add_argument("--param", action="append", default=[],
                           metavar="KEY=VALUE",
                           help="study parameter override, repeatable")
    fleet_run.add_argument("--tag", action="append", default=[],
                           help="extra tag stored on every cell run, "
                                "repeatable")
    fleet_run.add_argument("--no-resume", action="store_true",
                           help="re-execute cells even when their run is "
                                "already in the store")
    fleet_run.add_argument("--lease-timeout", type=float, default=60.0,
                           metavar="SECONDS",
                           help="heartbeat age after which a worker's cell "
                                "is reclaimed (default: 60)")
    fleet_run.add_argument("--queue", type=str, default=None, metavar="DIR",
                           help="work-queue directory (default: "
                                "<store>/queue/<study-key>)")
    fleet_run.add_argument("--quiet", action="store_true",
                           help="suppress the periodic progress lines")

    fleet_status = fsub.add_parser(
        "status", help="per-queue cell counts of a store's fleet queues")
    _add_store_arg(fleet_status, required=False)
    fleet_status.add_argument("--queue", type=str, default=None,
                              metavar="DIR",
                              help="inspect one queue directory instead of "
                                   "every queue under the store")

    fleet_workers = fsub.add_parser(
        "workers", help="per-worker claim counts and lease heartbeats")
    _add_store_arg(fleet_workers, required=False)
    fleet_workers.add_argument("--queue", type=str, default=None,
                               metavar="DIR",
                               help="inspect one queue directory instead of "
                                    "every queue under the store")

    fleet_watch = fsub.add_parser(
        "watch", help="live queue depth, per-worker heartbeat ages and "
                      "completed-cell rate")
    _add_store_arg(fleet_watch, required=False)
    fleet_watch.add_argument("--queue", type=str, default=None, metavar="DIR",
                             help="watch one queue directory instead of "
                                  "every queue under the store")
    fleet_watch.add_argument("--interval", type=float, default=2.0,
                             metavar="SECONDS",
                             help="refresh interval (default: 2)")
    fleet_watch.add_argument("--once", action="store_true",
                             help="print a single snapshot and exit")
    fleet_watch.add_argument("--duration", type=float, default=None,
                             metavar="SECONDS",
                             help="stop watching after SECONDS even while "
                                  "the queues are still running")

    serve = sub.add_parser(
        "serve", help="serve specs from the result cache (long-lived daemon)")
    _add_store_arg(serve)
    serve.add_argument("--host", type=str, default=DEFAULT_HOST,
                       help=f"TCP bind host (default: {DEFAULT_HOST})")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                       help=f"TCP bind port, 0 picks a free one "
                            f"(default: {DEFAULT_PORT})")
    serve.add_argument("--unix-socket", type=str, default=None, metavar="PATH",
                       help="serve on an AF_UNIX socket path instead of TCP")
    serve.add_argument("--executor", choices=("pool", "fleet"),
                       default="pool",
                       help="where cache misses execute: an in-process pool "
                            "or an attached fleet work queue drained by "
                            "external workers (default: pool)")
    serve.add_argument("--max-workers", type=int, default=1, metavar="N",
                       help="concurrent simulations of the pool executor "
                            "(default: 1)")
    serve.add_argument("--queue", type=str, default=None, metavar="DIR",
                       help="fleet executor's queue directory (default: "
                            "<store>/queue/serve)")
    serve.add_argument("--auto-compact-lines", type=int,
                       default=AUTO_COMPACT_LINES, metavar="N",
                       help="fold the store's index journal into index.json "
                            "once it holds N lines (0 disables; default: "
                            f"{AUTO_COMPACT_LINES})")
    serve.add_argument("--auto-compact-bytes", type=int,
                       default=AUTO_COMPACT_BYTES, metavar="N",
                       help="likewise, once the journal reaches N bytes "
                            f"(0 disables; default: {AUTO_COMPACT_BYTES})")
    serve.add_argument("--stuck-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="fleet executor only: seconds a queued cell may "
                            "sit with no outcome and no live worker lease "
                            "before it is declared stuck (default: wait "
                            "forever)")
    serve.add_argument("--no-fallback", action="store_true",
                       help="with --executor fleet and --stuck-timeout: fail "
                            "stuck submissions instead of degrading to an "
                            "in-process pool behind a circuit breaker")
    serve.add_argument("--verbose", action="store_true",
                       help="log one line per request to stderr")

    submit = sub.add_parser(
        "submit", help="submit a spec to a running 'repro serve' daemon")
    submit.add_argument("--address", type=str,
                        default=f"{DEFAULT_HOST}:{DEFAULT_PORT}",
                        metavar="ADDR",
                        help='daemon address: "host:port", a bare port, or '
                             'a "unix:PATH" socket (default: '
                             f'{DEFAULT_HOST}:{DEFAULT_PORT})')
    submit.add_argument("--spec", type=str, default=None, metavar="PATH",
                        help="ExperimentSpec or StudySpec JSON file to "
                             "submit (overrides the workload/system flags)")
    submit.add_argument("--client", type=str, default=None,
                        help="client name; runs executed for us are tagged "
                             "client:<name>")
    submit.add_argument("--tag", action="append", default=[],
                        help="extra tag stored on runs this submission "
                             "causes, repeatable")
    submit.add_argument("--no-wait", action="store_true",
                        help="return immediately after scheduling a miss "
                             "instead of waiting for the result")
    submit.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="cap on how long to wait for a miss to execute")
    submit.add_argument("--retries", type=int, default=0, metavar="N",
                        help="retry an unreachable daemon N times with "
                             "exponential backoff before giving up "
                             "(default: 0, fail on first refusal)")
    submit.add_argument("--retry-deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="overall deadline across retries; implies "
                             "--retries 1000000 when --retries is 0")
    submit.add_argument("--json", action="store_true",
                        help="print the raw JSON reply instead of a summary")
    submit.add_argument("--status", action="store_true",
                        help="print the daemon's /status and exit")
    submit.add_argument("--shutdown", action="store_true",
                        help="ask the daemon to drain and exit")
    _add_common_workload_args(submit)
    _add_simulation_args(submit)
    submit.add_argument("--name", type=str, default="experiment",
                        help="experiment name recorded in the spec")

    store_cmd = sub.add_parser(
        "store", help="result-store maintenance (ls/compact/rebuild)")
    stsub = store_cmd.add_subparsers(dest="store_command", required=True)

    store_ls = stsub.add_parser("ls", help="list the runs stored in a store")
    _add_store_arg(store_ls)
    store_ls.add_argument("--name", type=str, default=None,
                          help="filter by experiment name ('prefix*' allowed)")
    store_ls.add_argument("--system", type=str, default=None,
                          help="filter by system key")
    store_ls.add_argument("--scenario", type=str, default=None,
                          help="filter by routing scenario")
    store_ls.add_argument("--cluster-size", type=int, default=None,
                          help="filter by total device count")
    store_ls.add_argument("--tag", type=str, default=None,
                          help="filter by tag")
    store_ls.add_argument("--stats", action="store_true",
                          help="also print the store's telemetry counters "
                               "(index cache hits/misses, journal lines, "
                               "auto-compactions) from the metrics registry")

    store_compact = stsub.add_parser(
        "compact", help="fold the append-only index journal into index.json")
    _add_store_arg(store_compact)

    store_rebuild = stsub.add_parser(
        "rebuild", help="regenerate the index from the run files (the truth)")
    _add_store_arg(store_rebuild)

    store_prune = stsub.add_parser(
        "prune", help="bounded eviction: delete old runs by age and/or count")
    _add_store_arg(store_prune)
    store_prune.add_argument("--older-than", type=float, default=None,
                             metavar="DAYS",
                             help="delete runs created more than DAYS ago")
    store_prune.add_argument("--max-runs", type=int, default=None,
                             metavar="N",
                             help="then keep at most N runs (oldest "
                                  "unprotected runs evicted first)")
    store_prune.add_argument("--protect-tag", action="append", default=None,
                             metavar="TAG",
                             help="never delete runs carrying TAG, "
                                  "repeatable (default: baseline)")
    store_prune.add_argument("--dry-run", action="store_true",
                             help="report what would be deleted, delete "
                                  "nothing")

    chaos = sub.add_parser(
        "chaos", help="deterministic fault-injection campaigns "
                      "(crash/torn-write/stall) with invariant checking")
    chsub = chaos.add_subparsers(dest="chaos_command", required=True)

    chaos_run = chsub.add_parser(
        "run", help="execute a fault plan against a scratch store and "
                    "verify the crash-consistency invariants")
    chaos_run.add_argument("--plan", type=str, required=True,
                           choices=PLAN_NAMES,
                           help="which built-in fault campaign to run")
    chaos_run.add_argument("--store", type=str, default=None, metavar="DIR",
                           help="scratch store directory, wiped before the "
                                "run (default: .repro-chaos/<plan>)")
    chaos_run.add_argument("--seed", type=int, default=0,
                           help="plan seed; the same (plan, seed) replays "
                                "the identical fault campaign (default: 0)")
    chaos_run.add_argument("--quick", action="store_true",
                           help="shrink workloads for CI smoke runs")
    chaos_run.add_argument("--no-inject", action="store_true",
                           help="run the identical campaign with no faults "
                                "installed (the no-op acceptance check: the "
                                "store digest must match an injected run)")
    chaos_run.add_argument("--report", type=str, default=None, metavar="PATH",
                           help="also write the full JSON chaos report here")

    chsub.add_parser("plans", help="list the built-in chaos plans")
    chsub.add_parser("points", help="list the named fault-injection points")

    calib = sub.add_parser(
        "calib", help="calibrate the analytic cost model against measured "
                      "(or synthetic) microbenchmark observations")
    casub = calib.add_subparsers(dest="calib_command", required=True)

    calib_measure = casub.add_parser(
        "measure", help="run the seeded microbenchmark schedule against a "
                        "hidden ground-truth machine and write observation "
                        "CSVs (comm/compute/all_to_all)")
    calib_measure.add_argument("--output", type=str, required=True,
                               metavar="DIR",
                               help="observation directory to write")
    calib_measure.add_argument("--model", type=str,
                               default="mixtral-8x7b-e8k2",
                               choices=list_model_configs(),
                               help="model fixing the All-to-All hidden size")
    calib_measure.add_argument("--num-nodes", type=int, default=2)
    calib_measure.add_argument("--devices-per-node", type=int, default=4)
    calib_measure.add_argument("--seed", type=int, default=0,
                               help="microbenchmark schedule seed")
    calib_measure.add_argument("--machine-seed", type=int, default=None,
                               help="seed of the hidden ground-truth machine "
                                    "draw (default: --seed)")
    calib_measure.add_argument("--noise", type=float, default=0.0,
                               metavar="REL",
                               help="relative Gaussian measurement noise "
                                    "(0 = exact observations)")
    calib_measure.add_argument("--tiny", action="store_true",
                               help="minimal schedule for CI smoke runs")

    calib_fit = casub.add_parser(
        "fit", help="fit bandwidth scales, latency intercepts, FLOPs "
                    "efficiency and the per-token byte overhead to an "
                    "observation directory")
    calib_fit.add_argument("--observations", type=str, required=True,
                           metavar="DIR")
    calib_fit.add_argument("--output", type=str, default=None,
                           metavar="PROFILE.json",
                           help="write the fitted CalibrationProfile here")
    calib_fit.add_argument("--robust", action="store_true",
                           help="Huber-weighted (outlier-robust) line fits "
                                "for the comm terms")
    calib_fit.add_argument("--min-r2", type=float, default=None,
                           metavar="R2",
                           help="exit 1 when any term's R² is below R2 "
                                "(the CI gate)")

    calib_report = casub.add_parser(
        "report", help="render the goodness-of-fit report (per-term R², "
                       "MAPE, residuals, worst-fit links)")
    calib_report.add_argument("--observations", type=str, required=True,
                              metavar="DIR")
    calib_report.add_argument("--robust", action="store_true")
    calib_report.add_argument("--output", type=str, default=None,
                              metavar="PATH",
                              help="write the markdown report here instead "
                                   "of printing it")

    calib_apply = casub.add_parser(
        "apply", help="embed a fitted profile into an ExperimentSpec so "
                      "studies and the serve daemon run on the calibrated "
                      "machine")
    calib_apply.add_argument("--profile", type=str, required=True,
                             metavar="PROFILE.json")
    calib_apply.add_argument("--spec", type=str, required=True,
                             metavar="SPEC.json")
    calib_apply.add_argument("--output", type=str, default=None,
                             metavar="OUT.json",
                             help="write the calibrated spec here (default: "
                                  "print it)")
    return parser


def _add_store_arg(parser: argparse.ArgumentParser,
                   required: bool = True) -> None:
    parser.add_argument("--store", type=str, required=required,
                        help="result-store directory"
                        + ("" if required else " (or pass --queue)"))


def _add_simulation_args(parser: argparse.ArgumentParser) -> None:
    """Flags shared by the simulation commands (``compare`` and ``run``)."""
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--warmup", type=int, default=2)
    parser.add_argument("--systems", nargs="+",
                        default=["megatron", "fsdp_ep", "flexmoe", "laer"],
                        choices=available_systems())
    parser.add_argument("--reference", type=str, default="megatron")
    parser.add_argument("--sequential", action="store_true",
                        help="simulate the systems one after another instead "
                             "of in parallel worker processes")
    parser.add_argument("--overflow-penalty", type=float, default=0.0,
                        metavar="FACTOR",
                        help="charge tokens routed beyond a device's memory "
                             "capacity at FACTOR times their expert compute "
                             "time (0 disables the overflow model)")
    parser.add_argument("--token-capacity", type=int, default=None,
                        metavar="TOKENS",
                        help="explicit per-device routed-token budget for "
                             "the overflow model (default: derived from "
                             "device memory)")
    parser.add_argument("--drop-policy", choices=DROP_POLICIES,
                        default="penalty",
                        help="how tokens beyond capacity are handled: "
                             "'penalty' (linear charge scaled by "
                             "--overflow-penalty), 'truncate' "
                             "(capacity-factor truncation) or 'recompute' "
                             "(one full extra expert pass); the non-default "
                             "policies activate the overflow model even "
                             "with --overflow-penalty 0")


def _add_common_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", type=str, default="mixtral-8x7b-e8k2",
                        choices=list_model_configs())
    parser.add_argument("--num-nodes", type=int, default=4)
    parser.add_argument("--devices-per-node", type=int, default=8)
    parser.add_argument("--tokens-per-device", type=int, default=16384)
    parser.add_argument("--skew", type=float, default=0.45)
    parser.add_argument("--layers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scenario", type=str, default="drifting",
                        choices=available_scenarios(),
                        help="routing scenario (see 'repro scenarios')")
    parser.add_argument("--param", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="scenario parameter override, repeatable "
                             "(e.g. --param period=20)")


def _scenario_params(pairs: Sequence[str]) -> Dict[str, object]:
    """Parse repeated ``--param key=value`` flags (values as JSON, else str)."""
    params: Dict[str, object] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ValueError(
                f"invalid scenario parameter {pair!r}; expected KEY=VALUE")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def _experiment_spec(args: argparse.Namespace, warmup: int,
                     systems: Optional[Sequence[str]] = None,
                     reference: str = "megatron",
                     name: str = "experiment") -> ExperimentSpec:
    """Assemble an :class:`ExperimentSpec` from the common CLI flags."""
    return ExperimentSpec(
        name=name,
        cluster=ClusterSpec(num_nodes=args.num_nodes,
                            devices_per_node=args.devices_per_node),
        workload=WorkloadSpec(model=args.model,
                              tokens_per_device=args.tokens_per_device,
                              layers=args.layers,
                              iterations=args.iterations,
                              warmup=warmup,
                              skew=args.skew,
                              seed=args.seed,
                              scenario=args.scenario,
                              params=_scenario_params(args.param)),
        systems=tuple(systems) if systems else ("laer",),
        reference=reference,
        overflow_penalty=getattr(args, "overflow_penalty", 0.0),
        token_capacity=getattr(args, "token_capacity", None),
        drop_policy=getattr(args, "drop_policy", "penalty"),
    )


def _print_experiment(result: ExperimentResult) -> None:
    """Print the speedup and breakdown tables of one experiment result."""
    if result.reference_substituted:
        print(f"warning: reference system {result.requested_reference!r} is "
              f"not among the simulated systems; using {result.reference!r} "
              f"as the reference instead", file=sys.stderr)
    model = result.spec.workload.model
    print_report(
        result.format_speedups(title=f"End-to-end comparison on {model}"),
        result.format_breakdown(title="Time breakdown (percent of total)"))


# ----------------------------------------------------------------------
# Sub-command implementations
# ----------------------------------------------------------------------
def cmd_models(_: argparse.Namespace) -> int:
    rows = [get_model_config(name).summary() for name in list_model_configs()]
    print_report(format_table(rows, title="Table 2 model configurations"))
    return 0


def cmd_systems(_: argparse.Namespace) -> int:
    rows = [{"system": name, "description": description}
            for name, description in system_descriptions().items()]
    print_report(format_table(rows, title="Registered training systems"))
    return 0


def cmd_scenarios(args: argparse.Namespace) -> int:
    rows = [{"scenario": name, "description": description}
            for name, description in scenario_descriptions().items()]
    blocks = [format_table(rows, title="Registered routing scenarios")]
    if getattr(args, "verbose", False):
        for name in available_scenarios():
            details = registered_scenario(name).param_details()
            if details:
                blocks.append(format_table(
                    details, title=f"Parameters of scenario {name!r}"))
        for name in available_scenario_wrappers():
            details = registered_scenario_wrapper(name).param_details()
            if details:
                blocks.append(format_table(
                    details, title=f"Parameters of wrapper {name!r}"))
    print_report(*blocks)
    return 0


def _spec_or_error(args: argparse.Namespace, warmup: int,
                   systems: Optional[Sequence[str]] = None,
                   reference: str = "megatron",
                   name: str = "experiment") -> Optional[ExperimentSpec]:
    """Assemble a spec, reporting scenario/parameter problems as a CLI error."""
    try:
        spec = _experiment_spec(args, warmup=warmup, systems=systems,
                                reference=reference, name=name)
        _check_scenario_buildable(spec)
        return spec
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return None


def _check_scenario_buildable(spec: ExperimentSpec) -> None:
    """Build (but don't consume) the scenario source to validate param values.

    Spec construction rejects unknown scenario/parameter *names*; value
    errors (e.g. ``--param period=1``) only surface when the source is
    constructed, so do that eagerly -- sources are lazy, no frames are drawn.
    """
    spec.workload.make_source(spec.cluster.num_devices)


def cmd_trace(args: argparse.Namespace) -> int:
    command = getattr(args, "trace_command", None)
    if command == "record":
        return cmd_trace_record(args)
    if command == "export":
        return cmd_trace_export(args)
    spec = _spec_or_error(args, warmup=0)
    if spec is None:
        return 2
    trace = spec.workload.make_trace(spec.cluster.num_devices)
    summary = summarize_trace(trace)
    print_report(format_table([summary.as_dict()],
                              title=f"Routing trace summary "
                                    f"({spec.workload.scenario})"))
    if args.output:
        path = save_trace(trace, args.output)
        print(f"Trace saved to {path}")
    return 0


def cmd_trace_record(args: argparse.Namespace) -> int:
    """Re-enter ``main`` with the telemetry tracer armed around the command.

    The root span is exported to the environment before the command runs,
    so any fleet workers it spawns parent their spans into this trace and
    write their own event files next to the coordinator's.
    """
    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest:
        print("error: pass the repro command to trace, e.g. "
              "'repro trace record -- fleet run sweep-cluster-sizes ...'",
              file=sys.stderr)
        return 2
    if rest[0] == "trace":
        print("error: refusing to trace the trace command itself",
              file=sys.stderr)
        return 2
    trace_dir = Path(args.trace_dir)
    saved = {name: os.environ.get(name)
             for name in (TRACE_DIR_ENV, TRACE_ID_ENV, TRACE_PARENT_ENV)}
    tracer = trace_install(Tracer(trace_dir, scope="coordinator"))
    try:
        with trace_span(f"cli.{rest[0]}", argv=" ".join(rest)):
            trace_export_env()
            code = main(rest)
    finally:
        trace_uninstall()
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
    try:
        (trace_dir / "metrics.json").write_text(
            METRICS_REGISTRY.snapshot_json(), encoding="utf-8")
    except OSError as error:
        print(f"warning: cannot write metrics snapshot: {error}",
              file=sys.stderr)
    events = read_events(trace_dir)
    spans = sum(1 for event in events if event.get("type") == "span")
    pids = {event.get("pid") for event in events}
    print(f"trace: {spans} span(s) from {len(pids)} process(es) in "
          f"{trace_dir} (trace id {tracer.trace_id})")
    print(f"view with: repro trace export --dir {trace_dir}")
    return code


def cmd_trace_export(args: argparse.Namespace) -> int:
    trace_dir = Path(args.trace_dir)
    if not trace_dir.is_dir():
        print(f"error: no trace directory at {args.trace_dir!r}",
              file=sys.stderr)
        return 2
    events = read_events(trace_dir)
    if not events:
        print(f"error: no trace events under {trace_dir}", file=sys.stderr)
        return 2
    output = Path(args.output) if args.output else trace_dir / "trace.json"
    try:
        export_chrome_trace(events, output)
    except OSError as error:
        print(f"error: cannot write {output}: {error}", file=sys.stderr)
        return 2
    spans = sum(1 for event in events if event.get("type") == "span")
    pids = {event.get("pid") for event in events}
    print(f"wrote {spans} Chrome trace event(s) from {len(pids)} "
          f"process(es) to {output}")
    rows = phase_breakdown(events)
    if rows:
        print_report(format_phase_breakdown(rows))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    spec = _spec_or_error(args, warmup=args.warmup, systems=args.systems,
                          reference=args.reference, name="compare")
    if spec is None:
        return 2
    runner = ExperimentRunner(parallel=not args.sequential)
    _print_experiment(runner.run(spec))
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    spec = _spec_or_error(args, warmup=0, name="plan")
    if spec is None:
        return 2
    rows = [{
        "iteration": stats.iteration,
        "laer_rel_max_tokens": round(stats.planned_rel_max_tokens, 3),
        "static_rel_max_tokens": round(stats.static_rel_max_tokens, 3),
        "laer_ms": round(stats.planned_ms, 1),
        "static_ms": round(stats.static_ms, 1),
    } for stats in run_planner_study(spec)]
    print_report(format_table(
        rows, title=f"Planner vs static EP, per iteration "
                    f"(aggregated over {spec.workload.layers} MoE layers)"))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    if args.spec:
        try:
            spec = ExperimentSpec.load(args.spec)
            _check_scenario_buildable(spec)
        except (OSError, ValueError, KeyError, TypeError) as error:
            print(f"error: cannot load spec {args.spec!r}: {error}",
                  file=sys.stderr)
            return 2
    else:
        spec = _spec_or_error(args, warmup=args.warmup, systems=args.systems,
                              reference=args.reference, name=args.name)
        if spec is None:
            return 2
    if args.dump_spec:
        if args.dump_spec == "-":
            print(spec.to_json())
            return 0
        try:
            path = spec.save(args.dump_spec)
        except OSError as error:
            print(f"error: cannot write spec to {args.dump_spec!r}: {error}",
                  file=sys.stderr)
            return 2
        print(f"Spec saved to {path}")
        return 0
    result = ExperimentRunner(parallel=not args.sequential).run(spec)
    _print_experiment(result)
    if args.output:
        try:
            path = result.save(args.output)
        except OSError as error:
            print(f"error: cannot write result to {args.output!r}: {error}",
                  file=sys.stderr)
            return 2
        print(f"Result saved to {path}")
    return 0


def cmd_studies(_: argparse.Namespace) -> int:
    rows = [{"study": name, "description": description}
            for name, description in study_descriptions().items()]
    print_report(format_table(rows, title="Registered study definitions"))
    return 0


def _load_study(args: argparse.Namespace) -> StudySpec:
    """Resolve the study argument: registry name or JSON file path.

    Registered names win, so a stray file or directory in the working
    directory named like a study (e.g. a store created with
    ``--store sweep-cluster-sizes``) cannot shadow the registry.
    """
    params = _scenario_params(args.param)
    if args.study.lower() not in study_descriptions() and (
            args.study.endswith(".json") or Path(args.study).is_file()):
        if params:
            raise ValueError("--param only applies to registered studies; "
                             "edit the JSON spec instead")
        return StudySpec.load(args.study)
    return make_study(args.study, **params)


def _entry_rows(entries: Sequence[IndexEntry]) -> List[Dict[str, Any]]:
    """One table row per (stored run, system) with the indexed metrics."""
    rows: List[Dict[str, Any]] = []
    for entry in entries:
        for system in entry.systems:
            metrics = entry.metrics.get(system, {})
            rows.append({
                "run_id": entry.run_id,
                "cell": entry.name,
                "scenario": entry.scenario,
                "gpus": entry.num_devices,
                "system": system,
                "tok_s": round(metrics.get("throughput", 0.0), 1),
                "speedup": round(metrics.get("speedup_vs_reference", 0.0), 3),
                "rel_max_tokens": round(
                    metrics.get("mean_relative_max_tokens", 0.0), 3),
            })
    return rows


def _print_cell_table(store: ResultStore, cells, title: str) -> None:
    """Per-cell outcome table shared by the study and fleet run commands."""
    by_run = {entry.run_id: entry for entry in store.entries()}
    rows = []
    for cell in cells:
        entry = by_run.get(cell.run_id)
        for row in _entry_rows([entry] if entry else []):
            rows.append({"cell": cell.cell_id, "status": cell.status,
                         **{k: v for k, v in row.items() if k != "cell"}})
    print_report(format_table(rows, title=title))


def cmd_study_run(args: argparse.Namespace) -> int:
    try:
        study = _load_study(args)
    except (OSError, ValueError, KeyError, TypeError) as error:
        print(f"error: cannot load study {args.study!r}: {error}",
              file=sys.stderr)
        return 2
    if args.dump_spec:
        if args.dump_spec == "-":
            print(study.to_json())
            return 0
        try:
            path = study.save(args.dump_spec)
        except OSError as error:
            print(f"error: cannot write study spec to {args.dump_spec!r}: "
                  f"{error}", file=sys.stderr)
            return 2
        print(f"Study spec saved to {path}")
        return 0
    if getattr(args, "workers", 0) > 0:  # 0 = in-process StudyRunner
        if args.sequential:
            print("error: --sequential and --workers are mutually "
                  "exclusive (worker processes are inherently parallel)",
                  file=sys.stderr)
            return 2
        return _run_fleet(study, args, workers=args.workers,
                          lease_timeout=60.0, queue=None, quiet=False)
    store = ResultStore(args.store)
    runner = StudyRunner(store, parallel=not args.sequential)
    report = runner.run(study, tags=args.tag, resume=not args.no_resume)
    _print_cell_table(store, report.cells,
                      f"Study {study.name!r} ({report.execution_mode})")
    print(report.summary())
    return 0


def _open_store(path: str) -> Optional[ResultStore]:
    """Open an existing store for the read-only commands (None + error if
    the directory does not exist, so typos don't read as empty stores)."""
    if not Path(path).is_dir():
        print(f"error: no result store at {path!r}", file=sys.stderr)
        return None
    return ResultStore(path)


def cmd_study_ls(args: argparse.Namespace) -> int:
    store = _open_store(args.store)
    if store is None:
        return 2
    entries = store.query(name=args.name, system=args.system,
                          scenario=args.scenario,
                          cluster_size=args.cluster_size, tag=args.tag)
    rows = [{
        "run_id": entry.run_id,
        "name": entry.name,
        "scenario": entry.scenario,
        "cluster": f"{entry.num_nodes}x{entry.devices_per_node}",
        "systems": "+".join(entry.systems),
        "tags": ",".join(entry.tags),
        "created": time.strftime("%Y-%m-%d %H:%M:%S",
                                 time.localtime(entry.created_at)),
    } for entry in entries]
    print_report(format_table(
        rows, title=f"Stored runs in {store.root} ({len(rows)})"))
    return 0


def cmd_study_diff(args: argparse.Namespace) -> int:
    store = _open_store(args.store)
    if store is None:
        return 2
    try:
        diff = store.diff(args.run_a, args.run_b)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    print_report(format_run_diff(
        diff.as_rows(), title=f"{args.run_a} -> {args.run_b}"))
    if diff.systems_only_in_a:
        print(f"only in {args.run_a}: {', '.join(diff.systems_only_in_a)}")
    if diff.systems_only_in_b:
        print(f"only in {args.run_b}: {', '.join(diff.systems_only_in_b)}")
    return 0


def cmd_study_report(args: argparse.Namespace) -> int:
    store = _open_store(args.store)
    if store is None:
        return 2
    tags = [tag for tag in
            (f"study:{args.study}" if args.study else None, args.tag)
            if tag]
    entries = store.entries()
    for tag in tags:
        entries = [entry for entry in entries if tag in entry.tags]
    if not entries:
        tagged = f" tagged {' and '.join(repr(t) for t in tags)}" if tags else ""
        print(f"error: no stored runs{tagged} in {store.root}",
              file=sys.stderr)
        return 2
    sections: Dict[str, List[Dict[str, Any]]] = {}
    sizes = sorted({entry.num_devices for entry in entries})
    if len(sizes) >= 2:
        # The paper's scaling figure: mean speedup vs reference per system,
        # one row per cluster size covered by the report.
        systems = sorted({system for entry in entries
                          for system in entry.systems})
        series_rows: List[Dict[str, Any]] = []
        for size in sizes:
            row: Dict[str, Any] = {"gpus": size}
            for system in systems:
                values = [
                    entry.metrics[system]["speedup_vs_reference"]
                    for entry in entries
                    if entry.num_devices == size and system in entry.metrics
                    and "speedup_vs_reference" in entry.metrics[system]]
                row[system] = (round(sum(values) / len(values), 3)
                               if values else "")
            series_rows.append(row)
        sections["Speedup vs cluster size"] = series_rows
    scenarios = sorted({entry.scenario for entry in entries if entry.scenario})
    if len(scenarios) >= 2:
        # Scenario robustness: per-run regret vs the best system *in that
        # run* (so clusters of different sizes stay comparable), averaged
        # per scenario.  A system that wins one scenario but collapses on
        # another shows up as a wide min..max regret spread.
        regrets: Dict[str, Dict[str, List[float]]] = {}
        for entry in entries:
            if not entry.scenario:
                continue
            throughputs = {
                system: metrics["throughput"]
                for system, metrics in entry.metrics.items()
                if metrics.get("throughput")}
            if not throughputs:
                continue
            best = max(throughputs.values())
            for system, value in throughputs.items():
                regrets.setdefault(system, {}).setdefault(
                    entry.scenario, []).append(best / value - 1.0)
        robustness_rows: List[Dict[str, Any]] = []
        for system in sorted(regrets):
            by_scenario = {
                scenario: sum(values) / len(values)
                for scenario, values in regrets[system].items()}
            low = min(by_scenario.values())
            high = max(by_scenario.values())
            worst = max(by_scenario, key=lambda name: by_scenario[name])
            robustness_rows.append({
                "system": system,
                "scenarios": len(by_scenario),
                "min_regret": f"{low * 100:.1f}%",
                "max_regret": f"{high * 100:.1f}%",
                "spread": f"{(high - low) * 100:.1f}%",
                "worst_scenario": worst,
            })
        robustness_rows.sort(key=lambda row: float(row["spread"][:-1]))
        sections["Scenario robustness (regret vs per-run best)"] = (
            robustness_rows)
    if args.baseline:
        # Scope the regression scan to the runs this report covers, so one
        # study's report cannot pick up another study's baselines.
        covered = {entry.run_id for entry in entries}
        reports = [report for report in store.regressions(args.baseline)
                   if report.baseline_run in covered
                   or report.candidate_run in covered]
        regression_rows: List[Dict[str, Any]] = []
        for report in reports:
            for regressed in report.regressed_metrics:
                regression_rows.append({
                    "baseline_run": report.baseline_run,
                    "candidate_run": report.candidate_run,
                    **regressed.as_row(),
                })
        sections[f"Regressions vs {args.baseline!r}"] = (
            regression_rows or [{"status": "none detected"}])
    if getattr(args, "trace", None):
        trace_root = Path(args.trace)
        events = read_events(trace_root) if trace_root.is_dir() else []
        if not events:
            print(f"error: no trace events under {args.trace!r}",
                  file=sys.stderr)
            return 2
        sections["Phase breakdown (traced)"] = [
            {**row, "share": f"{row['share'] * 100:.1f}%"}
            for row in phase_breakdown(events)]
    title = args.study or f"runs in {store.root}"
    tagged = (" tagged " + " and ".join(f"`{t}`" for t in tags)) if tags else ""
    intro = f"{len(entries)} stored run(s){tagged}."
    text = format_study_report(title, _entry_rows(entries),
                               intro=intro, sections=sections)
    if args.output:
        try:
            Path(args.output).write_text(text)
        except OSError as error:
            print(f"error: cannot write report to {args.output!r}: {error}",
                  file=sys.stderr)
            return 2
        print(f"Report written to {args.output}")
    else:
        print(text)
    return 0


def cmd_study_gate(args: argparse.Namespace) -> int:
    """The stored-baseline regression gate (exit 1 when thresholds trip)."""
    store = _open_store(args.store)
    if store is None:
        return 2
    metrics = tuple(args.metric) or ("throughput",)
    # A typo'd metric name would silently gate on nothing and pass.
    unknown = [metric for metric in metrics
               if metric not in DIFF_METRICS
               and not metric.startswith("breakdown.")]
    if unknown:
        print(f"error: unknown gate metric(s) {unknown}; known: "
              f"{list(DIFF_METRICS)} or any 'breakdown.<component>'",
              file=sys.stderr)
        return 2
    reports = store.regressions(args.baseline, metrics=metrics,
                                threshold=args.threshold)
    unscoped = len(reports)
    if args.study:
        covered = {entry.run_id
                   for entry in store.query(tag=f"study:{args.study}")}
        reports = [report for report in reports
                   if report.baseline_run in covered
                   or report.candidate_run in covered]
    if not reports:
        if unscoped:
            print(f"error: {unscoped} comparable run pair(s) exist for "
                  f"baseline tag {args.baseline!r}, but none belong to "
                  f"study {args.study!r}", file=sys.stderr)
        else:
            print(f"error: no baseline-tagged runs with re-runs to compare "
                  f"(baseline tag {args.baseline!r}) in {store.root}",
                  file=sys.stderr)
        return 2
    # 'breakdown.<component>' names are only known per run: a component
    # absent from every compared pair (a typo, or a model knob that was
    # off) would gate on nothing and vacuously pass.
    present = {delta.metric
               for report in reports
               for system in report.diff.systems
               for delta in system.metrics}
    absent = [metric for metric in metrics
              if metric.startswith("breakdown.") and metric not in present]
    if absent:
        print(f"error: gate metric(s) {absent} appear in none of the "
              f"{len(reports)} compared run pair(s); present breakdown "
              f"metrics: {sorted(m for m in present if m.startswith('breakdown.'))}",
              file=sys.stderr)
        return 2
    rows = []
    for report in reports:
        for regressed in report.regressed_metrics:
            rows.append({
                "baseline_run": report.baseline_run,
                "candidate_run": report.candidate_run,
                **regressed.as_row(),
            })
    compared = len(reports)
    if rows:
        print_report(format_run_diff(
            rows, title=f"Regressions vs {args.baseline!r} "
                        f"(threshold {args.threshold:g})"))
        print(f"gate: FAIL ({len(rows)} regressed metric(s) across "
              f"{compared} compared run pair(s))")
        return 1
    print(f"gate: OK ({compared} run pair(s) within {args.threshold:g} "
          f"on {', '.join(metrics)})")
    return 0


def _run_fleet(study: StudySpec, args: argparse.Namespace, workers: int,
               lease_timeout: float, queue: Optional[str],
               quiet: bool) -> int:
    store = ResultStore(args.store)

    def progress(status) -> None:
        print(f"fleet: {status.done}/{status.total} done, "
              f"{status.leased} in flight, {status.pending} pending, "
              f"{status.failed} failed", file=sys.stderr)

    try:
        report = launch_fleet(
            study, store, workers=workers, tags=args.tag,
            resume=not args.no_resume, lease_timeout=lease_timeout,
            queue_root=queue, on_progress=None if quiet else progress)
    except (StudyCellError, StudyStoreError, RuntimeError) as error:
        report = getattr(error, "report", None)
        if report is not None:
            for failure in report.failures:
                print(f"failed cell {failure.cell_id!r} "
                      f"[{failure.kind}/{failure.worker or 'n/a'}]: "
                      f"{failure.error}", file=sys.stderr)
            print(report.summary(), file=sys.stderr)
        print(f"error: {error}", file=sys.stderr)
        return 1
    _print_cell_table(store, report.cells,
                      f"Fleet {study.name!r} ({len(report.workers)} workers)")
    print(report.summary())
    return 0


def cmd_fleet_run(args: argparse.Namespace) -> int:
    if args.workers < 1:
        print("error: --workers must be at least 1", file=sys.stderr)
        return 2
    try:
        study = _load_study(args)
    except (OSError, ValueError, KeyError, TypeError) as error:
        print(f"error: cannot load study {args.study!r}: {error}",
              file=sys.stderr)
        return 2
    return _run_fleet(study, args, workers=args.workers,
                      lease_timeout=args.lease_timeout, queue=args.queue,
                      quiet=args.quiet)


def _fleet_queues(args: argparse.Namespace) -> Optional[List[WorkQueue]]:
    """The queues a fleet inspection command covers (None on a bad path)."""
    if args.queue:
        root = Path(args.queue)
        if not root.is_dir():
            print(f"error: no fleet queue at {args.queue!r}", file=sys.stderr)
            return None
        return [WorkQueue(root)]
    if not args.store:
        print("error: pass --store (scan its queues) or --queue DIR",
              file=sys.stderr)
        return None
    store = _open_store(args.store)
    if store is None:
        return None
    queue_base = store.root / QUEUE_DIR_NAME
    if not queue_base.is_dir():
        return []
    return [WorkQueue(path) for path in sorted(queue_base.iterdir())
            if path.is_dir()]


def cmd_fleet_status(args: argparse.Namespace) -> int:
    queues = _fleet_queues(args)
    if queues is None:
        return 2
    rows = []
    for queue in queues:
        status = queue.status()
        rows.append({
            "queue": queue.root.name,
            "total": status.total,
            "pending": status.pending,
            "in_flight": status.leased,
            "done": status.done,
            "failed": status.failed,
            "state": ("empty" if status.total == 0
                      else "finished" if status.finished else "running"),
        })
    print_report(format_table(rows, title="Fleet queues"))
    return 0


def cmd_fleet_workers(args: argparse.Namespace) -> int:
    queues = _fleet_queues(args)
    if queues is None:
        return 2
    rows = []
    now = time.time()
    for queue in queues:
        status = queue.status()
        active = {lease.worker: lease for lease in status.leases}
        workers = sorted({*status.done_by_worker, *status.failed_by_worker,
                          *active})
        for worker in workers:
            lease = active.get(worker)
            rows.append({
                "queue": queue.root.name,
                "worker": worker,
                "done": status.done_by_worker.get(worker, 0),
                "failed": status.failed_by_worker.get(worker, 0),
                "in_flight": lease.key if lease else "",
                "heartbeat_age_s": (round(lease.age(now), 1)
                                    if lease else ""),
            })
    print_report(format_table(rows, title="Fleet workers"))
    return 0


def cmd_fleet_watch(args: argparse.Namespace) -> int:
    """Periodic fleet snapshot: queue depth, leases, completed-cell rate."""
    queues = _fleet_queues(args)
    if queues is None:
        return 2
    if not queues:
        print("no fleet queues to watch")
        return 0
    started = time.time()
    last_finished: Optional[int] = None
    last_time = started
    while True:
        now = time.time()
        total = pending = leased = done = failed = 0
        leases = []
        for queue in queues:
            status = queue.status()
            total += status.total
            pending += status.pending
            leased += status.leased
            done += status.done
            failed += status.failed
            leases.extend((queue.root.name, lease)
                          for lease in status.leases)
        if last_finished is None:
            rate = 0.0
        else:
            rate = (done + failed - last_finished) / max(now - last_time,
                                                         1e-9)
        last_finished, last_time = done + failed, now
        print(f"fleet watch: {done}/{total} done, {failed} failed, "
              f"{pending} pending, {leased} in flight, "
              f"{rate:.2f} cell(s)/s ({len(queues)} queue(s), "
              f"t+{now - started:.0f}s)", flush=True)
        for queue_name, lease in sorted(leases,
                                        key=lambda q: (q[0], q[1].worker)):
            print(f"  {queue_name}: {lease.worker} -> {lease.key} "
                  f"(heartbeat {lease.age(now):.1f}s ago)", flush=True)
        drained = total > 0 and pending == 0 and leased == 0
        if args.once:
            return 0
        if drained:
            print("fleet watch: all queues drained", flush=True)
            return 0
        if args.duration is not None and now - started >= args.duration:
            return 0
        time.sleep(args.interval)


# ----------------------------------------------------------------------
# Serving tier and store maintenance
# ----------------------------------------------------------------------
def cmd_serve(args: argparse.Namespace) -> int:
    """Run the serving daemon in the foreground until shutdown."""
    store = ResultStore(args.store,
                        auto_compact_lines=args.auto_compact_lines,
                        auto_compact_bytes=args.auto_compact_bytes)
    if args.executor == "fleet":
        queue_root = args.queue or store.root / QUEUE_DIR_NAME / "serve"
        executor = FleetQueueExecutor(store, WorkQueue(queue_root),
                                      stuck_timeout=args.stuck_timeout)
        if args.stuck_timeout is not None and not args.no_fallback:
            # Graceful degradation: when the queue has no live workers,
            # stuck submissions fall back to an in-process pool and a
            # circuit breaker short-circuits the queue until it recovers.
            executor = FallbackExecutor(
                executor, PoolExecutor(store, max_workers=args.max_workers),
                CircuitBreaker())
    else:
        if args.max_workers < 1:
            print("error: --max-workers must be at least 1", file=sys.stderr)
            return 2
        executor = PoolExecutor(store, max_workers=args.max_workers)
    try:
        server = ReproServer(store, host=args.host, port=args.port,
                             unix_socket=args.unix_socket,
                             executor=executor, verbose=args.verbose)
    except OSError as error:
        print(f"error: cannot bind serve daemon: {error}", file=sys.stderr)
        return 2
    print(f"repro-serve listening on {server.url} "
          f"(store {store.root}, executor {args.executor})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro-serve: draining...", file=sys.stderr)
    finally:
        server.close()
    print("repro-serve: drained and stopped")
    return 0


def _submit_spec_payload(args: argparse.Namespace) -> Optional[Dict[str, Any]]:
    """The ``--spec`` file (experiment or study, by shape) or flag-built spec."""
    if args.spec:
        try:
            payload = json.loads(Path(args.spec).read_text())
        except (OSError, ValueError) as error:
            print(f"error: cannot load spec {args.spec!r}: {error}",
                  file=sys.stderr)
            return None
        if not isinstance(payload, dict):
            print(f"error: {args.spec!r} is not a JSON object",
                  file=sys.stderr)
            return None
        return payload
    spec = _spec_or_error(args, warmup=args.warmup, systems=args.systems,
                          reference=args.reference, name=args.name)
    return None if spec is None else spec.to_dict()


def cmd_submit(args: argparse.Namespace) -> int:
    retry = None
    if args.retries > 0 or args.retry_deadline is not None:
        retries = args.retries if args.retries > 0 else 1_000_000
        retry = RetryPolicy(retries=retries, deadline_s=args.retry_deadline)
    client = ServeClient(args.address, client=args.client, retry=retry)
    try:
        if args.status:
            print(json.dumps(client.status(), indent=2))
            return 0
        if args.shutdown:
            reply = client.shutdown()
            print(f"daemon at {client.address}: "
                  f"{reply.get('status', reply)}")
            return 0
        payload = _submit_spec_payload(args)
        if payload is None:
            return 2
        reply = client.submit(payload, tags=args.tag, wait=not args.no_wait,
                              timeout=args.timeout)
    except ServeUnavailable as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        client.close()
    if args.json:
        print(json.dumps(reply.raw, indent=2))
    elif reply.kind == "study":
        cache = reply.cache if isinstance(reply.cache, dict) else {}
        print(f"study {reply.raw.get('study', '?')!r}: {reply.status} "
              f"({len(reply.cells)} cells: {cache.get('hit', 0)} hit, "
              f"{cache.get('coalesced', 0)} coalesced, "
              f"{cache.get('miss', 0)} executed)")
        for cell in reply.cells:
            line = f"  {cell.get('cell_id')}: {cell.get('run_id')}"
            if cell.get("error"):
                line += f"  FAILED: {cell['error']}"
            print(line)
    else:
        print(f"{reply.status} cache={reply.cache} run={reply.run_id} "
              f"({reply.elapsed_s:.3f}s)")
        if reply.error:
            print(f"error: {reply.error}", file=sys.stderr)
        if reply.entry:
            print_report(format_table(
                _entry_rows([IndexEntry.from_dict(reply.entry)]),
                title=f"Run {reply.run_id}"))
    if reply.status == "failed":
        return 1
    return 0


def cmd_store_ls(args: argparse.Namespace) -> int:
    code = cmd_study_ls(args)
    if code == 0:
        store = _open_store(args.store)
        if store is not None:
            skipped = store.journal_skipped_lines()
            quarantined = store.quarantined()
            print(f"journal: {skipped} torn/skipped line(s); "
                  f"quarantine: {len(quarantined)} run(s)"
                  + (f" ({', '.join(quarantined)})" if quarantined else ""))
            if getattr(args, "stats", False):
                # Process-wide counters from the unified metrics registry
                # (populated by the store operations this command just ran).
                value = METRICS_REGISTRY.value
                print(f"stats: index cache "
                      f"{int(value('repro_store_index_cache_hits_total'))} "
                      f"hit(s) / "
                      f"{int(value('repro_store_index_cache_misses_total'))} "
                      f"miss(es); journal "
                      f"{int(value('repro_store_journal_lines'))} line(s) "
                      f"({int(value('repro_store_journal_torn_lines'))} "
                      f"torn), "
                      f"{int(value('repro_store_journal_appends_total'))} "
                      f"append(s); "
                      f"{int(value('repro_store_auto_compactions_total'))} "
                      f"auto-compaction(s); "
                      f"{int(value('repro_store_puts_total'))} put(s)")
    return code


def cmd_store_compact(args: argparse.Namespace) -> int:
    store = _open_store(args.store)
    if store is None:
        return 2
    try:
        journal_bytes = store.journal_path.stat().st_size
    except OSError:
        journal_bytes = 0
    rows = store.compact_index()
    print(f"compacted {store.root}: {rows} run(s) in index.json, "
          f"journal folded ({journal_bytes} bytes -> 0)")
    return 0


def cmd_store_rebuild(args: argparse.Namespace) -> int:
    store = _open_store(args.store)
    if store is None:
        return 2
    rows = store.rebuild_index()
    print(f"rebuilt {store.root}: {rows} run(s) indexed from "
          f"{store.runs_dir}")
    quarantined = store.quarantined()
    if quarantined:
        print(f"quarantined {len(quarantined)} unreadable run file(s) "
              f"into {store.quarantine_dir}: {', '.join(quarantined)}")
    return 0


def cmd_store_prune(args: argparse.Namespace) -> int:
    if args.older_than is None and args.max_runs is None:
        print("error: pass --older-than and/or --max-runs",
              file=sys.stderr)
        return 2
    store = _open_store(args.store)
    if store is None:
        return 2
    protect = tuple(args.protect_tag) if args.protect_tag else ("baseline",)
    if args.dry_run:
        doomed = store.prune(older_than_days=args.older_than,
                             max_runs=args.max_runs, protect_tags=protect,
                             dry_run=True)
        print(f"would delete {len(doomed)} run(s) from {store.root} "
              f"(protected tags: {', '.join(protect)})")
        for run_id in doomed:
            print(f"  {run_id}")
        return 0
    deleted = store.prune(older_than_days=args.older_than,
                          max_runs=args.max_runs, protect_tags=protect)
    print(f"pruned {len(deleted)} run(s) from {store.root}, "
          f"{len(store)} remain (protected tags: {', '.join(protect)})")
    for run_id in deleted:
        print(f"  {run_id}")
    return 0


# ----------------------------------------------------------------------
# Chaos commands
# ----------------------------------------------------------------------
def cmd_chaos_run(args: argparse.Namespace) -> int:
    from repro.chaos.plans import run_chaos
    store_root = Path(args.store) if args.store \
        else Path(".repro-chaos") / args.plan
    if store_root.exists():
        contents = list(store_root.iterdir())
        is_store = (store_root / "runs").exists() \
            or (store_root / "index.journal").exists()
        if contents and not is_store:
            print(f"error: {store_root} exists and does not look like a "
                  f"result store; refusing to wipe it", file=sys.stderr)
            return 2
        shutil.rmtree(store_root)
    report = run_chaos(args.plan, store_root, seed=args.seed,
                       quick=args.quick,
                       inject_faults=not args.no_inject, log=print)
    print(report.summary())
    if args.report:
        path = report.save(args.report)
        print(f"chaos report written to {path}")
    return 0 if report.ok else 1


def cmd_chaos_plans(_: argparse.Namespace) -> int:
    rows = [{"plan": name, "description": description}
            for name, description in PLAN_DESCRIPTIONS.items()]
    print_report(format_table(rows, title="Built-in chaos plans"))
    return 0


def cmd_chaos_points(_: argparse.Namespace) -> int:
    rows = [{
        "point": point,
        "worker-reachable": "yes" if point in WORKER_CRASH_POINTS else "",
        "fires": description,
    } for point, description in sorted(FAULT_POINTS.items())]
    print_report(format_table(rows, title="Fault-injection points"))
    return 0


# ----------------------------------------------------------------------
# Calibration commands
# ----------------------------------------------------------------------
def _load_observations(path: str) -> Optional[ObservationSet]:
    try:
        return ObservationSet.load(path)
    except (OSError, ValueError, KeyError) as error:
        print(f"error: cannot load observations from {path!r}: {error}",
              file=sys.stderr)
        return None


def cmd_calib_measure(args: argparse.Namespace) -> int:
    if args.num_nodes < 1 or args.devices_per_node < 1:
        print("error: cluster shape must be at least 1x1", file=sys.stderr)
        return 2
    if args.num_nodes < 2 and args.devices_per_node < 2:
        print("error: a 1x1 cluster has no links to measure",
              file=sys.stderr)
        return 2
    config = (MeasureConfig.tiny(model=args.model) if args.tiny
              else MeasureConfig(model=args.model))
    if args.noise:
        config = dataclasses.replace(config, noise=args.noise)
    machine_seed = args.seed if args.machine_seed is None else args.machine_seed
    machine = GroundTruthMachine.draw(machine_seed)
    topology = ClusterTopology(num_nodes=args.num_nodes,
                               devices_per_node=args.devices_per_node)
    observations = run_microbenchmarks(topology, machine,
                                       config=config, seed=args.seed)
    path = observations.save(args.output)
    # The hidden machine rides along so tests and CI can check recovery;
    # real measurement campaigns simply won't have this file.
    with (path / "ground_truth.json").open("w") as handle:
        json.dump(machine.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    counts = observations.counts()
    print(f"Measured {counts['comm']} transfers, {counts['compute']} "
          f"kernels, {counts['all_to_all']} All-to-All exchanges "
          f"on a hidden {args.num_nodes}x{args.devices_per_node} machine "
          f"(machine seed {machine_seed}); observations in {path}")
    return 0


def _fit_observations(args: argparse.Namespace):
    observations = _load_observations(args.observations)
    if observations is None:
        return None
    try:
        return fit_calibration(observations, robust=args.robust)
    except ValueError as error:
        print(f"error: calibration fit failed: {error}", file=sys.stderr)
        return None


def cmd_calib_fit(args: argparse.Namespace) -> int:
    fit = _fit_observations(args)
    if fit is None:
        return 2
    print(fit_summary_line(fit))
    print(fit.profile.describe())
    if args.output:
        path = fit.profile.save(args.output)
        print(f"Profile {fit.profile.profile_id} saved to {path}")
    if args.min_r2 is not None and fit.r2_min < args.min_r2:
        print(f"FIT GATE FAILED: r2_min {fit.r2_min:.4f} < {args.min_r2}",
              file=sys.stderr)
        return 1
    return 0


def cmd_calib_report(args: argparse.Namespace) -> int:
    fit = _fit_observations(args)
    if fit is None:
        return 2
    report = fit_report(fit, title=args.observations)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report + "\n")
        print(f"Report written to {args.output}")
    else:
        print_report(report)
    return 0


def cmd_calib_apply(args: argparse.Namespace) -> int:
    try:
        profile = CalibrationProfile.load(args.profile)
    except (OSError, ValueError, KeyError) as error:
        print(f"error: cannot load profile {args.profile!r}: {error}",
              file=sys.stderr)
        return 2
    try:
        spec = ExperimentSpec.load(args.spec)
    except (OSError, ValueError, KeyError, TypeError) as error:
        print(f"error: cannot load spec {args.spec!r}: {error}",
              file=sys.stderr)
        return 2
    calibrated = spec.with_calibration(profile)
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(calibrated.to_dict(), handle, indent=2)
            handle.write("\n")
        print(f"Calibrated spec ({profile.describe()}) "
              f"written to {args.output}")
    else:
        print(json.dumps(calibrated.to_dict(), indent=2))
    return 0


# ----------------------------------------------------------------------
# Suite commands
# ----------------------------------------------------------------------
def _load_suite(path: str) -> Optional[SuiteSpec]:
    try:
        return SuiteSpec.load(path)
    except (OSError, ValueError, KeyError, TypeError) as error:
        print(f"error: cannot load suite {path!r}: {error}", file=sys.stderr)
        return None


def cmd_suite_make(args: argparse.Namespace) -> int:
    suite = default_suite()
    if args.output:
        path = suite.save(args.output)
        print(f"Suite {suite.suite_id} ({len(suite.members)} members) "
              f"saved to {path}")
    else:
        print(suite.to_json())
    return 0


def cmd_suite_ls(args: argparse.Namespace) -> int:
    suite = _load_suite(args.suite)
    if suite is None:
        return 2
    rows = [{
        "member": member.name,
        "scenario": member.scenario,
        "seed": member.seed,
        "skew": "" if member.skew is None else member.skew,
        "drift": "" if member.drift is None else member.drift,
        "params": json.dumps(member.params) if member.params else "",
        "description": member.description,
    } for member in suite.members]
    print_report(format_table(
        rows, title=f"Suite {suite.suite_id} ({len(rows)} members)"))
    return 0


def cmd_suite_characterize(args: argparse.Namespace) -> int:
    suite = _load_suite(args.suite)
    if suite is None:
        return 2
    num_devices = args.num_nodes * args.devices_per_node
    characterization = characterize_suite(suite, num_devices=num_devices)
    if args.output:
        path = characterization.save(args.output)
        print(f"Characterization of {suite.suite_id} "
              f"({len(characterization.profiles)} members on {num_devices} "
              f"devices) saved to {path}")
    else:
        print(format_suite_report(characterization))
    return 0


def cmd_suite_report(args: argparse.Namespace) -> int:
    suite = _load_suite(args.suite)
    if suite is None:
        return 2
    if args.characterization:
        try:
            characterization = SuiteCharacterization.load(args.characterization)
        except (OSError, ValueError, KeyError, TypeError) as error:
            print(f"error: cannot load characterization "
                  f"{args.characterization!r}: {error}", file=sys.stderr)
            return 2
        if characterization.suite_id != suite.suite_id:
            print(f"error: characterization {args.characterization!r} is for "
                  f"suite {characterization.suite_id}, not {suite.suite_id}",
                  file=sys.stderr)
            return 2
    else:
        characterization = characterize_suite(
            suite, num_devices=args.num_nodes * args.devices_per_node)
    text = format_suite_report(characterization)
    if args.output:
        try:
            Path(args.output).write_text(text)
        except OSError as error:
            print(f"error: cannot write report to {args.output!r}: {error}",
                  file=sys.stderr)
            return 2
        print(f"Report written to {args.output}")
    else:
        print(text)
    return 0


def cmd_suite_search(args: argparse.Namespace) -> int:
    suite = _load_suite(args.suite)
    if suite is None:
        return 2
    if args.budget < 1:
        print("error: --budget must be at least 1", file=sys.stderr)
        return 2
    store = ResultStore(args.store)
    cluster = ClusterSpec(num_nodes=args.num_nodes,
                          devices_per_node=args.devices_per_node)
    progress = None if args.quiet else (
        lambda message: print(message, file=sys.stderr))
    result = adversarial_search(suite, args.target, store,
                                budget=args.budget, seed=args.seed,
                                cluster=cluster, progress=progress)
    print(result.summary())
    if args.graduate:
        if result.winner is None:
            print("error: search produced no winner to graduate",
                  file=sys.stderr)
            return 1
        graduated = graduate(suite, result)
        path = graduated.save(args.graduate)
        print(f"Graduated winner into {graduated.suite_id} "
              f"({len(graduated.members)} members) at {path}")
    return 0


SUITE_COMMANDS = {
    "make": cmd_suite_make,
    "ls": cmd_suite_ls,
    "characterize": cmd_suite_characterize,
    "report": cmd_suite_report,
    "search": cmd_suite_search,
}


def cmd_suite(args: argparse.Namespace) -> int:
    return SUITE_COMMANDS[args.suite_command](args)


CHAOS_COMMANDS = {
    "run": cmd_chaos_run,
    "plans": cmd_chaos_plans,
    "points": cmd_chaos_points,
}


def cmd_chaos(args: argparse.Namespace) -> int:
    return CHAOS_COMMANDS[args.chaos_command](args)


CALIB_COMMANDS = {
    "measure": cmd_calib_measure,
    "fit": cmd_calib_fit,
    "report": cmd_calib_report,
    "apply": cmd_calib_apply,
}


def cmd_calib(args: argparse.Namespace) -> int:
    return CALIB_COMMANDS[args.calib_command](args)


STORE_COMMANDS = {
    "ls": cmd_store_ls,
    "compact": cmd_store_compact,
    "rebuild": cmd_store_rebuild,
    "prune": cmd_store_prune,
}


def cmd_store(args: argparse.Namespace) -> int:
    return STORE_COMMANDS[args.store_command](args)


STUDY_COMMANDS = {
    "run": cmd_study_run,
    "ls": cmd_study_ls,
    "diff": cmd_study_diff,
    "report": cmd_study_report,
    "gate": cmd_study_gate,
}


def cmd_study(args: argparse.Namespace) -> int:
    return STUDY_COMMANDS[args.study_command](args)


FLEET_COMMANDS = {
    "run": cmd_fleet_run,
    "status": cmd_fleet_status,
    "workers": cmd_fleet_workers,
    "watch": cmd_fleet_watch,
}


def cmd_fleet(args: argparse.Namespace) -> int:
    return FLEET_COMMANDS[args.fleet_command](args)


COMMANDS = {
    "models": cmd_models,
    "systems": cmd_systems,
    "scenarios": cmd_scenarios,
    "trace": cmd_trace,
    "compare": cmd_compare,
    "plan": cmd_plan,
    "run": cmd_run,
    "studies": cmd_studies,
    "study": cmd_study,
    "suite": cmd_suite,
    "fleet": cmd_fleet,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "store": cmd_store,
    "chaos": cmd_chaos,
    "calib": cmd_calib,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
