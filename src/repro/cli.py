"""Command-line interface for the LAER-MoE reproduction.

Provides quick access to the most common workflows without writing Python:

* ``repro models`` -- print the Table 2 model registry;
* ``repro systems`` -- print the registered training systems;
* ``repro scenarios`` -- print the registered routing scenarios;
* ``repro trace`` -- generate (and optionally save) a synthetic routing trace
  and print its summary statistics;
* ``repro compare`` -- simulate the compared training systems on a
  model/cluster/scenario combination and print throughput, speedups and the
  time breakdown;
* ``repro plan`` -- run the load-balancing planner over a trace and print
  per-iteration balance (aggregated over all MoE layers) against the static
  EP layout;
* ``repro run`` -- execute a declarative :class:`repro.api.ExperimentSpec`,
  either loaded from a JSON file (``--spec exp.json``) or assembled from the
  command-line flags; ``--dump-spec`` writes the spec instead of running it.

Workloads are scenarios: ``run``, ``compare``, ``plan`` and ``trace`` accept
``--scenario`` (any name from ``repro scenarios``) plus repeatable
``--param key=value`` scenario knobs, e.g.::

    repro compare --scenario bursty-churn --param period=20

Every simulation flows through :class:`repro.api.ExperimentRunner`, which
executes the compared systems in parallel worker processes by default
(``--sequential`` disables this), so ``repro compare`` and ``repro run`` on
an equivalent spec produce identical numbers.  (``python -m repro.cli``
works too; the ``repro`` console script is installed by the package
metadata.)
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from repro.analysis.reporting import format_table, print_report
from repro.api import (
    ClusterSpec,
    ExperimentResult,
    ExperimentRunner,
    ExperimentSpec,
    WorkloadSpec,
    run_planner_study,
)
from repro.sim.systems import available_systems, system_descriptions
from repro.workloads.model_configs import get_model_config, list_model_configs
from repro.workloads.scenarios import available_scenarios, scenario_descriptions
from repro.workloads.trace_io import save_trace, summarize_trace


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="LAER-MoE reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the Table 2 model configurations")
    sub.add_parser("systems", help="list the registered training systems")
    sub.add_parser("scenarios", help="list the registered routing scenarios")

    trace = sub.add_parser("trace", help="generate a synthetic routing trace")
    _add_common_workload_args(trace)
    trace.add_argument("--iterations", type=int, default=20)
    trace.add_argument("--output", type=str, default=None,
                       help="optional .npz path to save the trace to")

    compare = sub.add_parser("compare", help="simulate the training systems")
    _add_common_workload_args(compare)
    _add_simulation_args(compare)

    plan = sub.add_parser("plan", help="run the planner over a trace")
    _add_common_workload_args(plan)
    plan.add_argument("--iterations", type=int, default=6)

    run = sub.add_parser(
        "run", help="run a declarative experiment spec end to end")
    _add_common_workload_args(run)
    _add_simulation_args(run)
    run.add_argument("--name", type=str, default="experiment",
                     help="experiment name recorded in the spec/result")
    run.add_argument("--spec", type=str, default=None,
                     help="JSON experiment spec to run (overrides the "
                          "workload/system flags)")
    run.add_argument("--dump-spec", type=str, default=None, metavar="PATH",
                     help="write the experiment spec as JSON to PATH "
                          "('-' for stdout) and exit without running")
    run.add_argument("--output", type=str, default=None,
                     help="optional path to save the JSON experiment result")
    return parser


def _add_simulation_args(parser: argparse.ArgumentParser) -> None:
    """Flags shared by the simulation commands (``compare`` and ``run``)."""
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--warmup", type=int, default=2)
    parser.add_argument("--systems", nargs="+",
                        default=["megatron", "fsdp_ep", "flexmoe", "laer"],
                        choices=available_systems())
    parser.add_argument("--reference", type=str, default="megatron")
    parser.add_argument("--sequential", action="store_true",
                        help="simulate the systems one after another instead "
                             "of in parallel worker processes")


def _add_common_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", type=str, default="mixtral-8x7b-e8k2",
                        choices=list_model_configs())
    parser.add_argument("--num-nodes", type=int, default=4)
    parser.add_argument("--devices-per-node", type=int, default=8)
    parser.add_argument("--tokens-per-device", type=int, default=16384)
    parser.add_argument("--skew", type=float, default=0.45)
    parser.add_argument("--layers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scenario", type=str, default="drifting",
                        choices=available_scenarios(),
                        help="routing scenario (see 'repro scenarios')")
    parser.add_argument("--param", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="scenario parameter override, repeatable "
                             "(e.g. --param period=20)")


def _scenario_params(pairs: Sequence[str]) -> Dict[str, object]:
    """Parse repeated ``--param key=value`` flags (values as JSON, else str)."""
    params: Dict[str, object] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ValueError(
                f"invalid scenario parameter {pair!r}; expected KEY=VALUE")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def _experiment_spec(args: argparse.Namespace, warmup: int,
                     systems: Optional[Sequence[str]] = None,
                     reference: str = "megatron",
                     name: str = "experiment") -> ExperimentSpec:
    """Assemble an :class:`ExperimentSpec` from the common CLI flags."""
    return ExperimentSpec(
        name=name,
        cluster=ClusterSpec(num_nodes=args.num_nodes,
                            devices_per_node=args.devices_per_node),
        workload=WorkloadSpec(model=args.model,
                              tokens_per_device=args.tokens_per_device,
                              layers=args.layers,
                              iterations=args.iterations,
                              warmup=warmup,
                              skew=args.skew,
                              seed=args.seed,
                              scenario=args.scenario,
                              params=_scenario_params(args.param)),
        systems=tuple(systems) if systems else ("laer",),
        reference=reference,
    )


def _print_experiment(result: ExperimentResult) -> None:
    """Print the speedup and breakdown tables of one experiment result."""
    if result.reference_substituted:
        print(f"warning: reference system {result.requested_reference!r} is "
              f"not among the simulated systems; using {result.reference!r} "
              f"as the reference instead", file=sys.stderr)
    model = result.spec.workload.model
    print_report(
        result.format_speedups(title=f"End-to-end comparison on {model}"),
        result.format_breakdown(title="Time breakdown (percent of total)"))


# ----------------------------------------------------------------------
# Sub-command implementations
# ----------------------------------------------------------------------
def cmd_models(_: argparse.Namespace) -> int:
    rows = [get_model_config(name).summary() for name in list_model_configs()]
    print_report(format_table(rows, title="Table 2 model configurations"))
    return 0


def cmd_systems(_: argparse.Namespace) -> int:
    rows = [{"system": name, "description": description}
            for name, description in system_descriptions().items()]
    print_report(format_table(rows, title="Registered training systems"))
    return 0


def cmd_scenarios(_: argparse.Namespace) -> int:
    rows = [{"scenario": name, "description": description}
            for name, description in scenario_descriptions().items()]
    print_report(format_table(rows, title="Registered routing scenarios"))
    return 0


def _spec_or_error(args: argparse.Namespace, warmup: int,
                   systems: Optional[Sequence[str]] = None,
                   reference: str = "megatron",
                   name: str = "experiment") -> Optional[ExperimentSpec]:
    """Assemble a spec, reporting scenario/parameter problems as a CLI error."""
    try:
        spec = _experiment_spec(args, warmup=warmup, systems=systems,
                                reference=reference, name=name)
        _check_scenario_buildable(spec)
        return spec
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return None


def _check_scenario_buildable(spec: ExperimentSpec) -> None:
    """Build (but don't consume) the scenario source to validate param values.

    Spec construction rejects unknown scenario/parameter *names*; value
    errors (e.g. ``--param period=1``) only surface when the source is
    constructed, so do that eagerly -- sources are lazy, no frames are drawn.
    """
    spec.workload.make_source(spec.cluster.num_devices)


def cmd_trace(args: argparse.Namespace) -> int:
    spec = _spec_or_error(args, warmup=0)
    if spec is None:
        return 2
    trace = spec.workload.make_trace(spec.cluster.num_devices)
    summary = summarize_trace(trace)
    print_report(format_table([summary.as_dict()],
                              title=f"Routing trace summary "
                                    f"({spec.workload.scenario})"))
    if args.output:
        path = save_trace(trace, args.output)
        print(f"Trace saved to {path}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    spec = _spec_or_error(args, warmup=args.warmup, systems=args.systems,
                          reference=args.reference, name="compare")
    if spec is None:
        return 2
    runner = ExperimentRunner(parallel=not args.sequential)
    _print_experiment(runner.run(spec))
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    spec = _spec_or_error(args, warmup=0, name="plan")
    if spec is None:
        return 2
    rows = [{
        "iteration": stats.iteration,
        "laer_rel_max_tokens": round(stats.planned_rel_max_tokens, 3),
        "static_rel_max_tokens": round(stats.static_rel_max_tokens, 3),
        "laer_ms": round(stats.planned_ms, 1),
        "static_ms": round(stats.static_ms, 1),
    } for stats in run_planner_study(spec)]
    print_report(format_table(
        rows, title=f"Planner vs static EP, per iteration "
                    f"(aggregated over {spec.workload.layers} MoE layers)"))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    if args.spec:
        try:
            spec = ExperimentSpec.load(args.spec)
            _check_scenario_buildable(spec)
        except (OSError, ValueError, KeyError, TypeError) as error:
            print(f"error: cannot load spec {args.spec!r}: {error}",
                  file=sys.stderr)
            return 2
    else:
        spec = _spec_or_error(args, warmup=args.warmup, systems=args.systems,
                              reference=args.reference, name=args.name)
        if spec is None:
            return 2
    if args.dump_spec:
        if args.dump_spec == "-":
            print(spec.to_json())
            return 0
        try:
            path = spec.save(args.dump_spec)
        except OSError as error:
            print(f"error: cannot write spec to {args.dump_spec!r}: {error}",
                  file=sys.stderr)
            return 2
        print(f"Spec saved to {path}")
        return 0
    result = ExperimentRunner(parallel=not args.sequential).run(spec)
    _print_experiment(result)
    if args.output:
        try:
            path = result.save(args.output)
        except OSError as error:
            print(f"error: cannot write result to {args.output!r}: {error}",
                  file=sys.stderr)
            return 2
        print(f"Result saved to {path}")
    return 0


COMMANDS = {
    "models": cmd_models,
    "systems": cmd_systems,
    "scenarios": cmd_scenarios,
    "trace": cmd_trace,
    "compare": cmd_compare,
    "plan": cmd_plan,
    "run": cmd_run,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
