"""Command-line interface for the LAER-MoE reproduction.

Provides quick access to the most common workflows without writing Python:

* ``python -m repro.cli models`` -- print the Table 2 model registry;
* ``python -m repro.cli trace`` -- generate (and optionally save) a synthetic
  routing trace and print its summary statistics;
* ``python -m repro.cli compare`` -- simulate the compared training systems on
  a model/cluster/trace combination and print throughput, speedups and the
  time breakdown;
* ``python -m repro.cli plan`` -- run the load-balancing planner over a trace
  and print per-iteration balance against the static EP layout.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.analysis.breakdown import breakdown_table_from_runs
from repro.analysis.reporting import format_speedup_table, format_table, print_report
from repro.cluster.topology import ClusterTopology
from repro.core.cost_model import MoECostModel
from repro.core.layout import static_ep_layout
from repro.core.lite_routing import lite_route
from repro.core.planner import LoadBalancingPlanner, PlannerConfig
from repro.sim.engine import compare_systems
from repro.sim.systems import available_systems, make_system
from repro.workloads.model_configs import get_model_config, list_model_configs
from repro.workloads.routing_traces import RoutingTraceConfig, SyntheticRoutingTraceGenerator
from repro.workloads.trace_io import save_trace, summarize_trace


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="LAER-MoE reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the Table 2 model configurations")

    trace = sub.add_parser("trace", help="generate a synthetic routing trace")
    _add_common_workload_args(trace)
    trace.add_argument("--iterations", type=int, default=20)
    trace.add_argument("--output", type=str, default=None,
                       help="optional .npz path to save the trace to")

    compare = sub.add_parser("compare", help="simulate the training systems")
    _add_common_workload_args(compare)
    compare.add_argument("--iterations", type=int, default=10)
    compare.add_argument("--systems", nargs="+", default=["megatron", "fsdp_ep",
                                                          "flexmoe", "laer"],
                         choices=available_systems())
    compare.add_argument("--reference", type=str, default="megatron")

    plan = sub.add_parser("plan", help="run the planner over a trace")
    _add_common_workload_args(plan)
    plan.add_argument("--iterations", type=int, default=6)
    return parser


def _add_common_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", type=str, default="mixtral-8x7b-e8k2",
                        choices=list_model_configs())
    parser.add_argument("--num-nodes", type=int, default=4)
    parser.add_argument("--devices-per-node", type=int, default=8)
    parser.add_argument("--tokens-per-device", type=int, default=16384)
    parser.add_argument("--skew", type=float, default=0.45)
    parser.add_argument("--layers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)


def _topology(args: argparse.Namespace) -> ClusterTopology:
    return ClusterTopology(num_nodes=args.num_nodes,
                           devices_per_node=args.devices_per_node)


def _trace(args: argparse.Namespace, topology: ClusterTopology, iterations: int):
    config = get_model_config(args.model)
    generator = SyntheticRoutingTraceGenerator(RoutingTraceConfig(
        num_devices=topology.num_devices, num_experts=config.num_experts,
        num_layers=args.layers, tokens_per_device=args.tokens_per_device,
        top_k=config.top_k, skew=args.skew, churn_prob=0.0, seed=args.seed))
    return config, generator.generate(iterations)


# ----------------------------------------------------------------------
# Sub-command implementations
# ----------------------------------------------------------------------
def cmd_models(_: argparse.Namespace) -> int:
    rows = [get_model_config(name).summary() for name in list_model_configs()]
    print_report(format_table(rows, title="Table 2 model configurations"))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    topology = _topology(args)
    _, trace = _trace(args, topology, args.iterations)
    summary = summarize_trace(trace)
    print_report(format_table([summary.as_dict()],
                              title="Routing trace summary"))
    if args.output:
        path = save_trace(trace, args.output)
        print(f"Trace saved to {path}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    topology = _topology(args)
    config, trace = _trace(args, topology, args.iterations + 2)
    systems = [make_system(name, config, topology, args.tokens_per_device)
               for name in args.systems]
    results = compare_systems(systems, trace, warmup=2)
    throughputs = {name: run.throughput for name, run in results.items()}
    reference = args.reference if args.reference in results else args.systems[0]
    table = breakdown_table_from_runs(results)
    print_report(
        format_speedup_table(throughputs, reference,
                             title=f"End-to-end comparison on {config.name}"),
        format_table(table.as_rows(), title="Time breakdown (percent of total)"))
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    topology = _topology(args)
    config, trace = _trace(args, topology, args.iterations)
    cost_model = MoECostModel.from_model_config(config, topology)
    planner = LoadBalancingPlanner(topology, cost_model, config.num_experts,
                                   PlannerConfig(capacity=config.expert_capacity))
    static = static_ep_layout(topology.num_devices, config.num_experts,
                              config.expert_capacity)
    rows = []
    for iteration in range(trace.num_iterations):
        plans = planner.plan_iteration(trace.iteration(iteration))
        plan = plans[0]
        static_cost = cost_model.evaluate(
            lite_route(trace.layer(iteration, 0), static, topology))
        ideal = trace.layer(iteration, 0).sum() / topology.num_devices
        rows.append({
            "iteration": iteration,
            "laer_rel_max_tokens": round(plan.cost.max_tokens / ideal, 3),
            "static_rel_max_tokens": round(static_cost.max_tokens / ideal, 3),
            "laer_layer_ms": round(plan.cost.total * 1000, 1),
            "static_layer_ms": round(static_cost.total * 1000, 1),
        })
    print_report(format_table(rows, title="Planner vs static EP, per iteration"))
    return 0


COMMANDS = {
    "models": cmd_models,
    "trace": cmd_trace,
    "compare": cmd_compare,
    "plan": cmd_plan,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
