"""Execute an :class:`ExperimentSpec` end to end and collect structured results.

The :class:`ExperimentRunner` is the single implementation of the
trace-generation -> system-construction -> simulation -> analysis pipeline
that the CLI, the benchmarks and the examples previously each hand-wired.
It returns an :class:`ExperimentResult` -- per-system throughput, speedups,
time breakdown and balance statistics -- that serializes to JSON for
downstream tooling and round-trips through ``to_dict`` / ``from_dict``.

:func:`run_planner_study` covers the planner-only flow (``repro plan``):
it replays a trace through the load-balancing planner and reports balance
and layer cost against the static EP layout, aggregated over *all* MoE
layers of the trace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.analysis.breakdown import BreakdownTable
from repro.analysis.reporting import format_speedup_table, format_table
from repro.core.cost_model import MoECostModel
from repro.core.layout import static_ep_layout
from repro.core.lite_routing import lite_route
from repro.core.planner import LoadBalancingPlanner, PlannerConfig
from repro.sim.engine import RunResult, compare_systems_detailed
from repro.sim.systems import make_system
from repro.api.specs import ExperimentSpec


@dataclass
class SystemResult:
    """Aggregated, serializable outcome of simulating one system.

    Attributes:
        key: Result key (the system spec's label).
        system: Registry name of the simulated system.
        throughput: Training throughput in tokens per second.
        mean_iteration_s: Mean iteration time in seconds.
        tokens_per_iteration: Global tokens processed per iteration.
        speedup_vs_reference: Throughput ratio over the experiment's
            reference system.
        breakdown_s: Mean per-iteration seconds of every time component.
        mean_relative_max_tokens: Mean over iterations of the worst relative
            per-device token count (1.0 = perfect balance).
        per_layer_relative_max_tokens: The same statistic per MoE layer
            (Fig. 10b series).
    """

    key: str
    system: str
    throughput: float
    mean_iteration_s: float
    tokens_per_iteration: int
    speedup_vs_reference: float
    breakdown_s: Dict[str, float] = field(default_factory=dict)
    mean_relative_max_tokens: float = 1.0
    per_layer_relative_max_tokens: List[float] = field(default_factory=list)

    # ------------------------------------------------------------------
    def breakdown_fractions(self) -> Dict[str, float]:
        """Breakdown components as fractions of the mean iteration time."""
        if self.mean_iteration_s <= 0:
            return {key: 0.0 for key in self.breakdown_s}
        return {key: value / self.mean_iteration_s
                for key, value in self.breakdown_s.items()}

    def all_to_all_fraction(self) -> float:
        """Fraction of iteration time spent in (exposed) All-to-All traffic."""
        fractions = self.breakdown_fractions()
        return (fractions.get("all_to_all", 0.0)
                + fractions.get("exposed_comm", 0.0)
                + fractions.get("relayout", 0.0))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "system": self.system,
            "throughput": self.throughput,
            "mean_iteration_s": self.mean_iteration_s,
            "tokens_per_iteration": self.tokens_per_iteration,
            "speedup_vs_reference": self.speedup_vs_reference,
            "breakdown_s": dict(self.breakdown_s),
            "mean_relative_max_tokens": self.mean_relative_max_tokens,
            "per_layer_relative_max_tokens":
                list(self.per_layer_relative_max_tokens),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SystemResult":
        return cls(**dict(data))

    @classmethod
    def from_run(cls, key: str, system: str, run: RunResult,
                 reference_throughput: float) -> "SystemResult":
        """Summarise a simulator :class:`RunResult`."""
        speedup = (run.throughput / reference_throughput
                   if reference_throughput > 0 else float("inf"))
        # Coerce to builtin types: the simulator hands back numpy scalars,
        # which would otherwise leak into to_dict() and make in-memory
        # results compare unequal to their JSON round-trips.
        return cls(
            key=key,
            system=system,
            throughput=float(run.throughput),
            mean_iteration_s=float(run.mean_iteration_time),
            tokens_per_iteration=int(run.tokens_per_iteration),
            speedup_vs_reference=float(speedup),
            breakdown_s={name: float(seconds)
                         for name, seconds in run.mean_breakdown().items()},
            mean_relative_max_tokens=float(run.mean_relative_max_tokens()),
            per_layer_relative_max_tokens=[
                float(value)
                for value in run.per_layer_relative_max_tokens()],
        )


@dataclass
class ExperimentResult:
    """Structured outcome of running an :class:`ExperimentSpec`.

    Attributes:
        spec: The spec that produced this result (so results are
            self-describing and re-runnable).
        reference: System key the speedups are relative to (after any
            substitution).
        requested_reference: Reference key the spec asked for.
        systems: Per-system results, in spec order.
        execution_mode: How the systems were executed: ``"parallel"``,
            ``"sequential"``, ``"sequential-auto"`` (parallelism requested
            but demoted -- too few systems or cores) or
            ``"sequential-fallback"`` (worker-pool infrastructure failed).
            Empty for results loaded from pre-mode JSON files.
    """

    spec: ExperimentSpec
    reference: str
    requested_reference: str
    systems: Dict[str, SystemResult] = field(default_factory=dict)
    execution_mode: str = ""

    # ------------------------------------------------------------------
    @property
    def reference_substituted(self) -> bool:
        """Whether the requested reference was absent and got substituted."""
        return self.reference != self.requested_reference

    def throughputs(self) -> Dict[str, float]:
        """System key -> tokens per second."""
        return {key: result.throughput for key, result in self.systems.items()}

    def speedup(self, system: str, over: str) -> float:
        """Throughput ratio of ``system`` over ``over``."""
        denominator = self.systems[over].throughput
        if denominator <= 0:
            return float("inf")
        return self.systems[system].throughput / denominator

    # ------------------------------------------------------------------
    # Reporting helpers shared by the CLI / benchmarks / examples
    # ------------------------------------------------------------------
    def breakdown_table(self) -> BreakdownTable:
        """Per-system time breakdown table (Fig. 1b / Fig. 10a style)."""
        table = BreakdownTable()
        for key, result in self.systems.items():
            table.add(key, result.breakdown_s, result.mean_iteration_s)
        return table

    def format_speedups(self, title: Optional[str] = None) -> str:
        """ASCII speedup table against the experiment's reference."""
        return format_speedup_table(self.throughputs(), self.reference,
                                    title=title)

    def format_breakdown(self, title: Optional[str] = None) -> str:
        """ASCII time-breakdown table."""
        return format_table(self.breakdown_table().as_rows(), title=title)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "reference": self.reference,
            "requested_reference": self.requested_reference,
            "systems": {key: result.to_dict()
                        for key, result in self.systems.items()},
            "execution_mode": self.execution_mode,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        return cls(
            spec=ExperimentSpec.from_dict(data["spec"]),
            reference=data["reference"],
            requested_reference=data["requested_reference"],
            systems={key: SystemResult.from_dict(result)
                     for key, result in data["systems"].items()},
            # `or ""` so an explicit null in a hand-edited/legacy file maps
            # to the missing-mode default instead of the string "None".
            execution_mode=str(data.get("execution_mode") or ""),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> Path:
        """Write the result to a JSON file and return the path."""
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ExperimentResult":
        """Load a result from a JSON file."""
        return cls.from_json(Path(path).read_text())


class ExperimentRunner:
    """Execute experiment specs: scenario -> systems -> simulation -> analysis.

    The workload is materialised lazily: the spec's scenario is built once
    into a streaming :class:`~repro.workloads.scenarios.TraceSource` and each
    system consumes its own deterministic fork, which is what lets the
    (independent) systems execute in parallel worker processes without
    changing any reported number.

    The runner is stateless between :meth:`run` calls except for
    ``last_runs``, which retains the most recent raw
    :class:`~repro.sim.engine.RunResult` objects for callers that need
    per-iteration detail beyond the serializable summary.

    Args:
        parallel: Execute the spec's systems concurrently via
            :mod:`concurrent.futures` (default).  Results are identical to
            sequential execution; infrastructure failures fall back to the
            sequential path with a warning.
        max_workers: Worker-process cap for the parallel path (default:
            executor default, i.e. the CPU count).
    """

    def __init__(self, parallel: bool = True,
                 max_workers: Optional[int] = None) -> None:
        self.parallel = parallel
        self.max_workers = max_workers
        self.last_runs: Dict[str, RunResult] = {}

    def run(self, spec: ExperimentSpec) -> ExperimentResult:
        """Run one experiment end to end.

        Args:
            spec: The experiment to execute.

        Returns:
            An :class:`ExperimentResult` with one :class:`SystemResult` per
            system, in spec order.  If ``spec.reference`` is not among the
            simulated systems, the first system is substituted and the
            substitution is recorded (``requested_reference`` vs
            ``reference``).
        """
        topology = spec.cluster.to_topology()
        if spec.calibration is not None:
            # Applied exactly once: the calibrated topology carries the
            # bandwidth/latency/FLOPs corrections, make_system threads the
            # remaining per-token byte overhead.
            topology = spec.calibration.apply_to_topology(topology)
        config = spec.workload.model_config()
        source = spec.workload.make_source(topology.num_devices)

        systems = []
        for system_spec in spec.systems:
            built = make_system(
                system_spec.name, config, topology,
                spec.workload.tokens_per_device,
                activation_checkpointing=spec.activation_checkpointing,
                overflow_penalty=spec.overflow_penalty,
                token_capacity=spec.token_capacity,
                drop_policy=spec.drop_policy,
                calibration=spec.calibration,
                **system_spec.options)
            built.name = system_spec.key
            systems.append(built)

        runs, mode = compare_systems_detailed(
            systems, source, warmup=spec.workload.warmup,
            parallel=self.parallel, max_workers=self.max_workers)
        self.last_runs = runs

        reference = (spec.reference if spec.reference in runs
                     else next(iter(runs)))
        reference_throughput = runs[reference].throughput
        results = {
            system_spec.key: SystemResult.from_run(
                system_spec.key, system_spec.name, runs[system_spec.key],
                reference_throughput)
            for system_spec in spec.systems
        }
        return ExperimentResult(spec=spec, reference=reference,
                                requested_reference=spec.reference,
                                systems=results, execution_mode=mode)


def run_experiment(spec: ExperimentSpec, parallel: bool = True,
                   max_workers: Optional[int] = None) -> ExperimentResult:
    """Convenience wrapper: run ``spec`` with a fresh :class:`ExperimentRunner`."""
    return ExperimentRunner(parallel=parallel,
                            max_workers=max_workers).run(spec)


# ----------------------------------------------------------------------
# Planner study (the ``repro plan`` flow)
# ----------------------------------------------------------------------
@dataclass
class PlannerIterationStats:
    """Planner-vs-static balance of one iteration, aggregated over all layers.

    Attributes:
        iteration: Iteration index within the trace.
        planned_rel_max_tokens: Worst (max over layers) relative per-device
            token count under the planner's layouts (1.0 = perfect balance).
        static_rel_max_tokens: Same statistic under the static EP layout.
        planned_ms: Planner's modelled MoE time summed over all layers, ms.
        static_ms: Static EP modelled MoE time summed over all layers, ms.
    """

    iteration: int
    planned_rel_max_tokens: float
    static_rel_max_tokens: float
    planned_ms: float
    static_ms: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "iteration": self.iteration,
            "planned_rel_max_tokens": self.planned_rel_max_tokens,
            "static_rel_max_tokens": self.static_rel_max_tokens,
            "planned_ms": self.planned_ms,
            "static_ms": self.static_ms,
        }


def run_planner_study(spec: ExperimentSpec) -> List[PlannerIterationStats]:
    """Replay a spec's trace through the load-balancing planner.

    Every iteration's statistics aggregate over *all* MoE layers of the
    trace: the balance figure is the worst layer's relative max token count
    and the cost figures sum the per-layer modelled times, so the workload's
    ``layers`` knob genuinely affects the report.

    The first ``spec.workload.warmup`` iterations are replayed (so the
    planner builds its history, matching :class:`ExperimentRunner`) but
    excluded from the returned statistics; ``iteration`` indices are
    positions within the trace, so the first reported entry is ``warmup``.

    The workload streams through the scenario's
    :class:`~repro.workloads.scenarios.TraceSource` one frame at a time
    (like the simulation engine), so memory stays O(1) in the number of
    iterations instead of materializing the whole trace up front.
    """
    topology = spec.cluster.to_topology()
    if spec.calibration is not None:
        topology = spec.calibration.apply_to_topology(topology)
    config = spec.workload.model_config()
    source = spec.workload.make_source(topology.num_devices)
    cost_model = MoECostModel.from_model_config(
        config, topology,
        activation_checkpointing=spec.activation_checkpointing,
        comm_bytes_scale=(spec.calibration.comm_bytes_scale
                          if spec.calibration is not None else 1.0))
    planner = LoadBalancingPlanner(
        topology, cost_model, config.num_experts,
        PlannerConfig(capacity=config.expert_capacity))
    static = static_ep_layout(topology.num_devices, config.num_experts,
                              config.expert_capacity)

    stats: List[PlannerIterationStats] = []
    for iteration, frame in enumerate(source.iter_iterations()):
        plans = planner.plan_iteration(frame)
        if iteration < spec.workload.warmup:
            continue
        planned_rel, static_rel = [], []
        planned_total = static_total = 0.0
        for layer, plan in enumerate(plans):
            routing = frame[layer]
            ideal = routing.sum() / topology.num_devices
            static_cost = cost_model.evaluate(
                lite_route(routing, static, topology))
            planned_rel.append(plan.cost.max_tokens / ideal)
            static_rel.append(static_cost.max_tokens / ideal)
            planned_total += plan.cost.total
            static_total += static_cost.total
        stats.append(PlannerIterationStats(
            iteration=iteration,
            planned_rel_max_tokens=float(max(planned_rel)),
            static_rel_max_tokens=float(max(static_rel)),
            planned_ms=float(planned_total * 1000.0),
            static_ms=float(static_total * 1000.0),
        ))
    return stats
