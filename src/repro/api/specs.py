"""Declarative, JSON-serializable experiment specifications.

An :class:`ExperimentSpec` captures everything needed to reproduce one
comparison experiment -- the cluster, the workload (model + synthetic routing
trace), the systems to simulate and the speedup reference -- as frozen
dataclasses that round-trip losslessly through ``to_dict`` / ``from_dict``
(and therefore through JSON files on disk).

The specs are purely declarative: they name a model configuration from
:mod:`repro.workloads.model_configs` and systems from the
:mod:`repro.sim.systems` registry, and hold the numeric knobs of the
synthetic trace generator.  :class:`repro.api.runner.ExperimentRunner`
materialises them into topologies, traces and simulated systems.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.calib.profile import CalibrationProfile
from repro.cluster.topology import (
    DEFAULT_INTER_NODE_BANDWIDTH,
    DEFAULT_INTER_NODE_LATENCY,
    DEFAULT_INTRA_NODE_BANDWIDTH,
    DEFAULT_INTRA_NODE_LATENCY,
    ClusterTopology,
)
from repro.sim.iteration import DROP_POLICIES
from repro.sim.systems import registered_system
from repro.workloads.model_configs import (
    MoEModelConfig,
    get_model_config,
    list_model_configs,
)
from repro.workloads.routing_traces import (
    RoutingTrace,
    RoutingTraceConfig,
)
from repro.workloads.scenarios import (
    ScenarioContext,
    TraceSource,
    make_scenario,
    registered_scenario,
)


def _check_fields(cls: type, data: Mapping[str, Any]) -> None:
    """Reject unknown keys so typos in spec files fail loudly."""
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} field(s) {unknown}; known: {sorted(known)}")


@dataclass(frozen=True)
class ClusterSpec:
    """Declarative description of the simulated cluster.

    Attributes:
        num_nodes: Number of nodes.
        devices_per_node: Accelerators per node.
        intra_node_bandwidth: Unidirectional intra-node bandwidth in bytes/s
            (defaults to the paper's NVLink figure).
        inter_node_bandwidth: Unidirectional inter-node bandwidth in bytes/s
            (defaults to the paper's InfiniBand figure).
        intra_node_latency: Per-message intra-node latency in seconds.
        inter_node_latency: Per-message inter-node latency in seconds.
    """

    num_nodes: int = 4
    devices_per_node: int = 8
    intra_node_bandwidth: float = DEFAULT_INTRA_NODE_BANDWIDTH
    inter_node_bandwidth: float = DEFAULT_INTER_NODE_BANDWIDTH
    intra_node_latency: float = DEFAULT_INTRA_NODE_LATENCY
    inter_node_latency: float = DEFAULT_INTER_NODE_LATENCY

    def __post_init__(self) -> None:
        if self.num_nodes <= 0 or self.devices_per_node <= 0:
            raise ValueError("num_nodes and devices_per_node must be positive")
        if self.intra_node_bandwidth <= 0 or self.inter_node_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.intra_node_latency < 0 or self.inter_node_latency < 0:
            raise ValueError("latencies must be non-negative")

    @property
    def num_devices(self) -> int:
        return self.num_nodes * self.devices_per_node

    def to_topology(self) -> ClusterTopology:
        """Materialise the spec into a :class:`ClusterTopology`."""
        return ClusterTopology(
            num_nodes=self.num_nodes,
            devices_per_node=self.devices_per_node,
            intra_node_bandwidth=self.intra_node_bandwidth,
            inter_node_bandwidth=self.inter_node_bandwidth,
            intra_node_latency=self.intra_node_latency,
            inter_node_latency=self.inter_node_latency,
        )

    @classmethod
    def from_topology(cls, topology: ClusterTopology) -> "ClusterSpec":
        """Describe an existing :class:`ClusterTopology` as a spec."""
        return cls(
            num_nodes=topology.num_nodes,
            devices_per_node=topology.devices_per_node,
            intra_node_bandwidth=topology.intra_node_bandwidth,
            inter_node_bandwidth=topology.inter_node_bandwidth,
            intra_node_latency=topology.intra_node_latency,
            inter_node_latency=topology.inter_node_latency,
        )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClusterSpec":
        _check_fields(cls, data)
        return cls(**data)


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of the workload: model + routing scenario.

    Attributes:
        model: Table 2 model-configuration name
            (:func:`repro.workloads.model_configs.list_model_configs`).
        tokens_per_device: Tokens per device per micro-batch.
        layers: Number of MoE layers carried by the routing trace.
        iterations: Measured training iterations.
        warmup: Extra leading iterations simulated (so adaptive policies build
            history) but excluded from the reported statistics.
        skew: Dirichlet concentration of the expert-popularity distribution.
        drift: Per-iteration random-walk magnitude of the popularity logits.
        churn_prob: Probability per iteration of a hot-expert reshuffle.
        device_noise: Relative per-device multiplicative routing noise.
        seed: PRNG seed of the trace generator.
        scenario: Name of a registered routing scenario
            (:func:`repro.workloads.scenarios.available_scenarios`); the
            default ``drifting`` reproduces the historical synthetic trace.
        params: Scenario-specific keyword parameters (e.g. ``{"period": 20}``
            for ``bursty-churn``); values must be JSON-safe.  Unknown names
            are rejected at spec-construction time.
    """

    model: str = "mixtral-8x7b-e8k2"
    tokens_per_device: int = 16384
    layers: int = 2
    iterations: int = 10
    warmup: int = 2
    skew: float = 0.45
    drift: float = 0.08
    churn_prob: float = 0.0
    device_noise: float = 0.05
    seed: int = 0
    scenario: str = "drifting"
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.model not in list_model_configs():
            raise ValueError(
                f"unknown model {self.model!r}; known: {list_model_configs()}")
        if self.tokens_per_device <= 0:
            raise ValueError("tokens_per_device must be positive")
        if self.layers <= 0:
            raise ValueError("layers must be positive")
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")
        if self.warmup < 0:
            raise ValueError("warmup must be non-negative")
        if self.skew <= 0:
            raise ValueError("skew must be positive")
        if self.drift < 0 or self.device_noise < 0:
            raise ValueError("drift and device_noise must be non-negative")
        if not 0.0 <= self.churn_prob <= 1.0:
            raise ValueError("churn_prob must be a probability")
        object.__setattr__(self, "params", dict(self.params))
        for key in self.params:
            if not isinstance(key, str):
                raise ValueError("scenario parameter names must be strings")
        # Raises ValueError for unknown scenarios / parameters so spec typos
        # fail at load time, not mid-run.
        entry = registered_scenario(self.scenario)
        object.__setattr__(self, "scenario", entry.name)
        entry.check_params(self.params)

    def model_config(self) -> MoEModelConfig:
        """Look up the model configuration named by the spec."""
        return get_model_config(self.model)

    def trace_config(self, num_devices: int) -> RoutingTraceConfig:
        """Trace-generator configuration for a cluster of ``num_devices``."""
        return self.scenario_context(num_devices).trace_config()

    def scenario_context(self, num_devices: int) -> ScenarioContext:
        """Scenario build context for a cluster of ``num_devices``."""
        config = self.model_config()
        return ScenarioContext(
            num_devices=num_devices,
            num_experts=config.num_experts,
            num_layers=self.layers,
            tokens_per_device=self.tokens_per_device,
            top_k=config.top_k,
            iterations=self.iterations + self.warmup,
            seed=self.seed,
            skew=self.skew,
            drift=self.drift,
            churn_prob=self.churn_prob,
            device_noise=self.device_noise,
        )

    def make_source(self, num_devices: int) -> TraceSource:
        """Build the scenario's streaming trace source (warmup included)."""
        return make_scenario(self.scenario, self.scenario_context(num_devices),
                             **self.params)

    def make_trace(self, num_devices: int) -> RoutingTrace:
        """Materialise the routing trace (warmup + measured iterations)."""
        return self.make_source(num_devices).materialize()

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        _check_fields(cls, data)
        return cls(**data)


@dataclass(frozen=True)
class SystemSpec:
    """Declarative reference to one registered training system.

    Unlike :class:`repro.sim.systems.SystemSpec` (a fully-instantiated
    system), this spec only *names* a registry entry plus per-experiment
    parameter overrides, so it serializes cleanly.

    Attributes:
        name: Registry name (:func:`repro.sim.systems.available_systems`).
        label: Key used for this system in results and reports; defaults to
            ``name``.  Distinct labels let one experiment simulate the same
            system several times with different options.
        options: Keyword overrides of the registry entry's parameters (e.g.
            ``{"comm_opt": False}`` for ``laer``); values must be JSON-safe.
    """

    name: str
    label: Optional[str] = None
    options: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("system name must be non-empty")
        object.__setattr__(self, "name", self.name.lower())
        object.__setattr__(self, "options", dict(self.options))
        for key in self.options:
            if not isinstance(key, str):
                raise ValueError("system option names must be strings")
        # Raises ValueError for unknown names / options so spec typos fail at
        # load time, not mid-run.
        registered_system(self.name).check_params(self.options)

    @property
    def key(self) -> str:
        """The result/report key of this system."""
        return self.label or self.name

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "label": self.label,
                "options": dict(self.options)}

    @classmethod
    def from_dict(cls, data: Union[str, Mapping[str, Any]]) -> "SystemSpec":
        if isinstance(data, str):
            return cls(name=data)
        _check_fields(cls, data)
        return cls(**data)


def _default_systems() -> Tuple[SystemSpec, ...]:
    return tuple(SystemSpec(name)
                 for name in ("megatron", "fsdp_ep", "flexmoe", "laer"))


@dataclass(frozen=True)
class ExperimentSpec:
    """A complete, reproducible experiment: cluster + workload + systems.

    Attributes:
        name: Human-readable experiment name (used in reports and filenames).
        cluster: Simulated cluster description.
        workload: Model and routing-trace description.
        systems: Systems to simulate; entries may be given as bare registry
            names or mappings when loading from dicts/JSON.
        reference: System key speedups are reported against.  If the key is
            absent from ``systems`` the runner substitutes the first system
            (and records the substitution in the result).
        activation_checkpointing: Whether expert recomputation is enabled.
        overflow_penalty: Capacity-overflow cost factor: tokens a scenario
            routes beyond a device's memory budget are dropped and
            recomputed, charged at ``penalty`` times their expert compute
            time.  ``0.0`` (the default) disables the overflow model.
        token_capacity: Explicit per-device routed-token budget for the
            overflow model; ``None`` derives it from the simulated device's
            memory capacity.
        drop_policy: How tokens beyond capacity are handled: ``"penalty"``
            (the default linear charge), ``"truncate"`` (capacity-factor
            truncation) or ``"recompute"`` (one full extra expert pass); see
            :class:`repro.sim.iteration.IterationSimulator`.  The
            non-default policies activate the overflow model even with
            ``overflow_penalty == 0``.
        calibration: Optional fitted machine corrections
            (:class:`repro.calib.profile.CalibrationProfile`).  When set,
            the runner applies the profile to the materialised topology and
            threads the per-token byte overhead into every built system, so
            the experiment runs on the *measured* machine instead of the
            nominal one.  Serialized only when set, so uncalibrated specs
            keep their existing content-hashed run ids.
    """

    name: str = "experiment"
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    systems: Tuple[SystemSpec, ...] = field(default_factory=_default_systems)
    reference: str = "megatron"
    activation_checkpointing: bool = False
    overflow_penalty: float = 0.0
    token_capacity: Optional[int] = None
    drop_policy: str = "penalty"
    calibration: Optional[CalibrationProfile] = None

    def __post_init__(self) -> None:
        if self.calibration is not None and not isinstance(
                self.calibration, CalibrationProfile):
            object.__setattr__(self, "calibration",
                               CalibrationProfile.from_dict(self.calibration))
        if self.overflow_penalty < 0:
            raise ValueError("overflow_penalty must be non-negative")
        if self.token_capacity is not None and self.token_capacity <= 0:
            raise ValueError("token_capacity must be positive")
        if self.drop_policy not in DROP_POLICIES:
            raise ValueError(
                f"unknown drop_policy {self.drop_policy!r}; "
                f"expected one of {DROP_POLICIES}")
        systems = tuple(SystemSpec.from_dict(s) if not isinstance(s, SystemSpec)
                        else s for s in self.systems)
        if not systems:
            raise ValueError("an experiment needs at least one system")
        keys = [s.key for s in systems]
        duplicates = sorted({k for k in keys if keys.count(k) > 1})
        if duplicates:
            raise ValueError(
                f"duplicate system label(s) {duplicates}; give each entry a "
                f"unique label")
        object.__setattr__(self, "systems", systems)

    # ------------------------------------------------------------------
    @property
    def system_keys(self) -> Tuple[str, ...]:
        return tuple(s.key for s in self.systems)

    def with_systems(self, names: Sequence[Union[str, SystemSpec]],
                     reference: Optional[str] = None) -> "ExperimentSpec":
        """Derive a spec simulating a different set of systems."""
        systems = tuple(SystemSpec.from_dict(n) if not isinstance(n, SystemSpec)
                        else n for n in names)
        return replace(self, systems=systems,
                       reference=reference or self.reference)

    def with_calibration(
            self, calibration: Optional[CalibrationProfile]) -> "ExperimentSpec":
        """Derive a spec running on a calibrated (or uncalibrated) machine."""
        return replace(self, calibration=calibration)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data = {
            "name": self.name,
            "cluster": self.cluster.to_dict(),
            "workload": self.workload.to_dict(),
            "systems": [s.to_dict() for s in self.systems],
            "reference": self.reference,
            "activation_checkpointing": self.activation_checkpointing,
        }
        # The overflow knobs are serialized only when set: run ids and spec
        # fingerprints are content hashes of this dict, so emitting the
        # defaults would orphan every run stored before the knobs existed
        # (resume would re-execute finished sweeps, regressions() would
        # stop pairing old baselines with new candidates).
        if self.overflow_penalty != 0.0:
            data["overflow_penalty"] = self.overflow_penalty
        if self.token_capacity is not None:
            data["token_capacity"] = self.token_capacity
        if self.drop_policy != "penalty":
            data["drop_policy"] = self.drop_policy
        if self.calibration is not None:
            data["calibration"] = self.calibration.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        _check_fields(cls, data)
        kwargs: Dict[str, Any] = dict(data)
        if "cluster" in kwargs:
            kwargs["cluster"] = ClusterSpec.from_dict(kwargs["cluster"])
        if "workload" in kwargs:
            kwargs["workload"] = WorkloadSpec.from_dict(kwargs["workload"])
        if "systems" in kwargs:
            kwargs["systems"] = tuple(SystemSpec.from_dict(s)
                                      for s in kwargs["systems"])
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> Path:
        """Write the spec to a JSON file and return the path."""
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ExperimentSpec":
        """Load a spec from a JSON file."""
        return cls.from_json(Path(path).read_text())
