"""Declarative experiment API: spec -> registry -> runner -> results.

This package is the single front door to the reproduction.  Describe an
experiment as data (:class:`ExperimentSpec`), execute it with
:class:`ExperimentRunner`, and get back a serializable
:class:`ExperimentResult`::

    from repro.api import ExperimentSpec, WorkloadSpec, run_experiment

    spec = ExperimentSpec(
        name="quick-comparison",
        workload=WorkloadSpec(model="mixtral-8x7b-e8k2", iterations=8),
        systems=("fsdp_ep", "laer"),
        reference="fsdp_ep",
    )
    result = run_experiment(spec)
    print(result.format_speedups())
    result.save("result.json")

Specs round-trip losslessly through JSON (``spec.save("exp.json")`` /
``ExperimentSpec.load("exp.json")``), which is what ``repro run --spec``
consumes.  Systems are resolved through the decorator-based registry in
:mod:`repro.sim.systems`; register your own with
:func:`repro.sim.systems.register_system` and reference it from a spec by
name -- no edits to this package required.
"""

from repro.api.specs import (
    ClusterSpec,
    ExperimentSpec,
    SystemSpec,
    WorkloadSpec,
)
from repro.api.runner import (
    ExperimentResult,
    ExperimentRunner,
    PlannerIterationStats,
    SystemResult,
    run_experiment,
    run_planner_study,
)

__all__ = [
    "ClusterSpec",
    "ExperimentSpec",
    "SystemSpec",
    "WorkloadSpec",
    "ExperimentResult",
    "ExperimentRunner",
    "PlannerIterationStats",
    "SystemResult",
    "run_experiment",
    "run_planner_study",
]
