"""Observability layer: cross-process tracing + a process-global
metrics registry.

Three pillars, all stdlib-only (this package must never import back
into ``repro`` -- the store, queue, engine and serve layers import it at
module load):

* :mod:`repro.telemetry.trace` -- ``Span``/``Tracer`` JSONL tracing with
  env-var context propagation to fleet workers, a cross-process merger,
  and Chrome trace-event export (``repro trace record`` / ``export``).
* :mod:`repro.telemetry.metrics` -- counters, gauges and fixed-bucket
  histograms in one :data:`~repro.telemetry.metrics.REGISTRY`, snapshot
  as JSON or served Prometheus-text from the daemon's ``GET /metrics``.
* Profiling hooks -- the engine and planner wrap their phases in spans
  so ``repro study report --trace`` renders a per-phase breakdown.
"""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    counter,
    gauge,
    histogram,
)
from repro.telemetry.trace import (
    TRACE_DIR_ENV,
    TRACE_ID_ENV,
    TRACE_PARENT_ENV,
    Tracer,
    active,
    export_chrome_trace,
    export_env,
    install,
    maybe_install_from_env,
    phase_breakdown,
    read_events,
    span,
    uninstall,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "TRACE_DIR_ENV",
    "TRACE_ID_ENV",
    "TRACE_PARENT_ENV",
    "Tracer",
    "active",
    "export_chrome_trace",
    "export_env",
    "install",
    "maybe_install_from_env",
    "phase_breakdown",
    "read_events",
    "span",
    "uninstall",
]
