"""Process-global metrics registry: counters, gauges, fixed-bucket histograms.

This module absorbs the ad-hoc counters that used to live as private
attributes scattered across subsystems (``ResultStore._index_cache_hits``,
the serve daemon's ``_stats`` dict, fleet respawn totals, ...) into one
:class:`MetricsRegistry` that can be snapshot as JSON or rendered in the
Prometheus text exposition format (served from ``GET /metrics`` on the
serve daemon).

Like :mod:`repro.chaos.injection` and :mod:`repro.telemetry.trace`, this
module is intentionally stdlib-only and must never import back into
``repro``: the store, queue, retry and serve layers create their metrics
at module import time.

Conventions:

* Metric names follow Prometheus style: ``repro_<subsystem>_<what>_total``
  for counters, plain ``repro_<subsystem>_<what>`` for gauges.
* Every metric pre-registers a zero-valued unlabeled sample at creation,
  so a freshly started process exposes its full series catalogue
  immediately (a ``/metrics`` scrape before any traffic still shows every
  series its modules registered -- scrapers can discover the schema).
* Increments are lock-protected and cheap (one dict update); hot paths
  that need nanosecond-level disarmed cost should use the tracing hook's
  null fast path instead.
"""

from __future__ import annotations

import json
import math
import re
import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
]

#: Valid Prometheus metric / label names.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds): micro-benchmark to batch scale.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)

#: A label set frozen into a dict key: sorted (name, value) pairs.
LabelKey = Tuple[Tuple[str, str], ...]

_EMPTY_KEY: LabelKey = ()


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    key = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
    for name, _ in key:
        if not _LABEL_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
    return key


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _series_name(name: str, key: LabelKey, suffix: str = "",
                 extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(key)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return name + suffix
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return f"{name}{suffix}{{{body}}}"


class Metric:
    """Base: one named metric holding per-labelset values."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._values: Dict[LabelKey, float] = {_EMPTY_KEY: 0.0}

    # -- reads ---------------------------------------------------------
    def value(self, labels: Optional[Mapping[str, Any]] = None) -> float:
        key = _EMPTY_KEY if not labels else _label_key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> List[Tuple[LabelKey, float]]:
        with self._lock:
            return sorted(self._values.items())

    def snapshot(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "help": self.help,
            "samples": [{"labels": dict(key), "value": value}
                        for key, value in self.samples()],
        }

    def reset(self) -> None:
        with self._lock:
            self._values = {_EMPTY_KEY: 0.0}

    # -- rendering -----------------------------------------------------
    def render(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for key, value in self.samples():
            lines.append(f"{_series_name(self.name, key)} "
                         f"{_format_value(value)}")
        return lines


class Counter(Metric):
    """Monotonically increasing count (``_total`` suffix by convention)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _EMPTY_KEY if not labels else _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount


class Gauge(Metric):
    """A value that can go up and down (queue depth, last-scan line count)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = _EMPTY_KEY if not labels else _label_key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _EMPTY_KEY if not labels else _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)


class Histogram(Metric):
    """Fixed-bucket histogram of observations (e.g. request latency).

    Rendered Prometheus-style as cumulative ``_bucket{le=...}`` series
    plus ``_sum`` and ``_count``.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds
        # per labelset: ([count per bucket] + [overflow], sum, count)
        self._hist: Dict[LabelKey, Tuple[List[int], float, int]] = {}
        self._hist[_EMPTY_KEY] = ([0] * (len(bounds) + 1), 0.0, 0)
        del self._values[_EMPTY_KEY]  # histograms keep their own table

    def observe(self, value: float, **labels: Any) -> None:
        value = float(value)
        key = _EMPTY_KEY if not labels else _label_key(labels)
        with self._lock:
            counts, total, count = self._hist.get(
                key, ([0] * (len(self.buckets) + 1), 0.0, 0))
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
            self._hist[key] = (counts, total + value, count + 1)

    # -- reads ---------------------------------------------------------
    def value(self, labels: Optional[Mapping[str, Any]] = None) -> float:
        """For histograms, ``value`` is the observation count."""
        key = _EMPTY_KEY if not labels else _label_key(labels)
        with self._lock:
            entry = self._hist.get(key)
            return float(entry[2]) if entry else 0.0

    def sum(self, labels: Optional[Mapping[str, Any]] = None) -> float:
        key = _EMPTY_KEY if not labels else _label_key(labels)
        with self._lock:
            entry = self._hist.get(key)
            return float(entry[1]) if entry else 0.0

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            items = sorted(self._hist.items())
        return {
            "kind": self.kind,
            "help": self.help,
            "buckets": list(self.buckets),
            "samples": [
                {"labels": dict(key), "counts": list(counts),
                 "sum": total, "count": count}
                for key, (counts, total, count) in items
            ],
        }

    def reset(self) -> None:
        with self._lock:
            self._hist = {_EMPTY_KEY: ([0] * (len(self.buckets) + 1),
                                       0.0, 0)}

    def render(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        with self._lock:
            items = sorted(self._hist.items())
        for key, (counts, total, count) in items:
            cumulative = 0
            for i, bound in enumerate(self.buckets):
                cumulative += counts[i]
                lines.append(
                    f"{_series_name(self.name, key, '_bucket', ('le', _format_value(bound)))} "
                    f"{cumulative}")
            cumulative += counts[-1]
            lines.append(
                f"{_series_name(self.name, key, '_bucket', ('le', '+Inf'))} "
                f"{cumulative}")
            lines.append(f"{_series_name(self.name, key, '_sum')} "
                         f"{_format_value(total)}")
            lines.append(f"{_series_name(self.name, key, '_count')} {count}")
        return lines


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    Creating a metric twice with the same name returns the existing
    instance (so independent modules can share a series); re-creating it
    with a *different* kind raises -- that is always a naming bug.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    # -- creation ------------------------------------------------------
    def _get_or_create(self, cls: type, name: str, help: str,
                       **kwargs: Any) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}")
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, buckets=buckets)  # type: ignore[return-value]

    # -- reads ---------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def value(self, name: str,
              labels: Optional[Mapping[str, Any]] = None) -> float:
        """Current value of a series (0.0 when the metric doesn't exist)."""
        metric = self.get(name)
        return metric.value(labels) if metric is not None else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able snapshot of every metric and sample."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        return {name: metric.snapshot() for name, metric in metrics}

    def snapshot_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4)."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        lines: List[str] = []
        for _, metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n" if lines else ""

    def reset(self) -> None:
        """Zero every value; metrics stay registered.  For tests."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()


#: The process-global registry every subsystem registers into.
REGISTRY = MetricsRegistry()


def counter(name: str, help: str = "") -> Counter:
    """Get-or-create a counter in the process-global :data:`REGISTRY`."""
    return REGISTRY.counter(name, help)


def gauge(name: str, help: str = "") -> Gauge:
    """Get-or-create a gauge in the process-global :data:`REGISTRY`."""
    return REGISTRY.gauge(name, help)


def histogram(name: str, help: str = "",
              buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
    """Get-or-create a histogram in the process-global :data:`REGISTRY`."""
    return REGISTRY.histogram(name, help, buckets=buckets)
