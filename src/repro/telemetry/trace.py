"""Cross-process execution tracing: spans, JSONL event files, Chrome export.

The tracing hook follows the :mod:`repro.chaos.injection` pattern exactly:
a module-global tracer armed via :func:`install` (or from the
``REPRO_TRACE_*`` environment variables in spawned fleet workers), and a
:func:`span` hook whose *disarmed* fast path is a single global ``None``
check returning a shared no-op span -- cheap enough to leave in the
simulator's per-iteration loop (benchmarked with a CI-gated ceiling in
``benchmarks/bench_telemetry.py``).

Each traced process appends complete-span JSON lines to its own file
(``events-<scope>-i<incarnation>-<pid>.jsonl``) inside the trace
directory; per-incarnation file names keep respawned workers from
clobbering their predecessor's events.  :func:`read_events` merges every
per-process file into one timeline, and :func:`export_chrome_trace`
writes Chrome trace-event JSON viewable in Perfetto or chrome://tracing.

Timestamps: span durations are measured on the monotonic clock; event
``ts_ns`` values are wall-clock nanoseconds derived from a wall/monotonic
anchor captured once at tracer start, so events from different processes
interleave on a common axis without per-event wall reads.

Determinism: span/trace ids come from ``uuid.uuid4`` (``os.urandom``) and
the process counter -- never from the seeded ``random`` module -- so
arming the tracer cannot perturb seeded experiment results; the test
suite asserts store digests are byte-identical with tracing on vs off.

Intentionally stdlib-only: the engine, planner, store and fleet import
this at module load, so it must never import back into ``repro``.
"""

from __future__ import annotations

import itertools
import json
import os
import re
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, MutableMapping, Optional, Union

__all__ = [
    "TRACE_DIR_ENV",
    "TRACE_ID_ENV",
    "TRACE_PARENT_ENV",
    "Tracer",
    "span",
    "install",
    "uninstall",
    "active",
    "maybe_install_from_env",
    "export_env",
    "read_events",
    "export_chrome_trace",
    "phase_breakdown",
]

#: Trace directory handed to spawned fleet workers (like REPRO_CHAOS_PLAN).
TRACE_DIR_ENV = "REPRO_TRACE_DIR"
#: Trace id shared by every process in one recorded run.
TRACE_ID_ENV = "REPRO_TRACE_ID"
#: Span id the child's root spans are parented to.
TRACE_PARENT_ENV = "REPRO_TRACE_PARENT"

#: Per-process event files inside the trace directory.
EVENT_FILE_PREFIX = "events-"
EVENT_FILE_GLOB = EVENT_FILE_PREFIX + "*.jsonl"

_SCOPE_SAFE_RE = re.compile(r"[^a-zA-Z0-9_.-]+")


def _safe_scope(scope: str) -> str:
    return _SCOPE_SAFE_RE.sub("_", scope) or "proc"


class _NullSpan:
    """Shared no-op span returned while no tracer is installed."""

    __slots__ = ()
    span_id = ""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()

#: The armed tracer.  ``span()`` is a single global check when ``None``.
_TRACER: Optional["Tracer"] = None


class Span:
    """One timed region; use as a context manager.

    Created by :func:`span`; records monotonic start/duration and is
    written to the tracer's event file as one JSON line on exit.
    """

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id",
                 "_start_mono")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = tracer.next_span_id()
        self.parent_id: Optional[str] = None
        self._start_mono = 0

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = self.tracer._stack()
        self.parent_id = stack[-1] if stack else self.tracer.parent_id
        stack.append(self.span_id)
        self._start_mono = time.monotonic_ns()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        end_mono = time.monotonic_ns()
        stack = self.tracer._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._emit_span(self, self._start_mono,
                               end_mono - self._start_mono)
        return False


def span(name: str, **attrs: Any) -> Union[Span, _NullSpan]:
    """Open a span named ``name`` under the armed tracer.

    The disarmed fast path is one global ``None`` check returning a
    shared no-op span -- safe to call from the simulator's inner loop.
    """
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return Span(tracer, name, attrs)


class Tracer:
    """Per-process span sink writing one JSONL event file.

    Args:
        root: Trace directory (created if missing); one recorded run ==
            one directory holding every process's event file.
        scope: Human name for this process in the timeline
            (``coordinator``, ``worker-1``, ...).
        trace_id: Run-wide id; generated when None (coordinator) and
            inherited via :data:`TRACE_ID_ENV` in children.
        parent_id: Span id this process's root spans hang under
            (the coordinator span that spawned it), or None.
        incarnation: Respawn ordinal of this worker; part of the event
            file name so a respawn never clobbers its predecessor.
    """

    def __init__(self, root: Union[str, Path], scope: str = "main",
                 trace_id: Optional[str] = None,
                 parent_id: Optional[str] = None,
                 incarnation: int = 0):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.trace_id = trace_id or uuid.uuid4().hex
        self.scope = scope or "main"
        self.parent_id = parent_id or None
        self.incarnation = int(incarnation)
        self.pid = os.getpid()
        # Wall/monotonic anchor: event ts_ns = anchor_wall + mono delta,
        # so per-event stamps cost one monotonic read and processes
        # share a common wall axis.
        self._anchor_wall_ns = time.time_ns()
        self._anchor_mono_ns = time.monotonic_ns()
        self._counter = itertools.count(1)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._closed = False
        self.path = self.root / (
            f"{EVENT_FILE_PREFIX}{_safe_scope(self.scope)}"
            f"-i{self.incarnation}-{self.pid}.jsonl")
        self._file = open(self.path, "a", encoding="utf-8")
        self._write({
            "type": "process", "trace": self.trace_id, "pid": self.pid,
            "scope": self.scope, "incarnation": self.incarnation,
            "parent": self.parent_id, "ts_ns": self._anchor_wall_ns,
        })

    # -- span plumbing -------------------------------------------------
    def next_span_id(self) -> str:
        return f"{self.pid:x}.{next(self._counter)}"

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span_id(self) -> Optional[str]:
        stack = self._stack()
        return stack[-1] if stack else self.parent_id

    def wall_ns(self, mono_ns: int) -> int:
        return self._anchor_wall_ns + (mono_ns - self._anchor_mono_ns)

    def _emit_span(self, s: Span, start_mono: int, dur_ns: int) -> None:
        event: Dict[str, Any] = {
            "type": "span", "trace": self.trace_id, "id": s.span_id,
            "parent": s.parent_id, "name": s.name, "pid": self.pid,
            "tid": threading.get_native_id(), "scope": self.scope,
            "incarnation": self.incarnation,
            "ts_ns": self.wall_ns(start_mono), "dur_ns": dur_ns,
        }
        if s.attrs:
            event["attrs"] = s.attrs
        self._write(event)

    def _write(self, event: Dict[str, Any]) -> None:
        line = json.dumps(event, default=str) + "\n"
        with self._lock:
            if self._closed:
                return
            try:
                # One flushed line per event: a SIGKILLed worker loses at
                # most the span it was inside, never earlier events.
                self._file.write(line)
                self._file.flush()
            except (OSError, ValueError):
                pass  # tracing must never take the workload down

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                try:
                    self._file.close()
                except OSError:
                    pass


# ---------------------------------------------------------------------------
# arming / env propagation (mirrors repro.chaos.injection)

def install(tracer: Tracer) -> Tracer:
    """Arm ``tracer`` as the process-global span sink."""
    global _TRACER
    if _TRACER is not None and _TRACER is not tracer:
        _TRACER.close()
    _TRACER = tracer
    return tracer


def uninstall() -> None:
    """Disarm and close the active tracer (no-op when none armed)."""
    global _TRACER
    if _TRACER is not None:
        _TRACER.close()
        _TRACER = None


def active() -> Optional[Tracer]:
    """The armed tracer, or None."""
    return _TRACER


def maybe_install_from_env(scope: str = "", incarnation: int = 0,
                           environ: Optional[MutableMapping[str, str]] = None,
                           ) -> Optional[Tracer]:
    """Arm a tracer from ``REPRO_TRACE_*`` env vars; None when unset.

    Called at fleet-worker entry (next to the chaos installer): the
    coordinator exports the trace directory / id / parent span before
    spawning, the child inherits the environment, and its spans land in
    the same trace under the coordinator's span.
    """
    env = os.environ if environ is None else environ
    root = env.get(TRACE_DIR_ENV, "")
    if not root:
        return None
    tracer = Tracer(root,
                    scope=scope or f"pid-{os.getpid()}",
                    trace_id=env.get(TRACE_ID_ENV) or None,
                    parent_id=env.get(TRACE_PARENT_ENV) or None,
                    incarnation=incarnation)
    return install(tracer)


def export_env(environ: Optional[MutableMapping[str, str]] = None) -> None:
    """Export the armed tracer's context for child processes.

    Sets :data:`TRACE_DIR_ENV` / :data:`TRACE_ID_ENV` and points
    :data:`TRACE_PARENT_ENV` at the *current* span, so children spawned
    inside a span hang under it in the merged timeline.  No-op when no
    tracer is armed (an externally set ``REPRO_TRACE_DIR`` is left
    untouched, so un-traced coordinators still propagate a caller's
    trace context to their workers).
    """
    tracer = _TRACER
    if tracer is None:
        return
    env = os.environ if environ is None else environ
    env[TRACE_DIR_ENV] = str(tracer.root)
    env[TRACE_ID_ENV] = tracer.trace_id
    current = tracer.current_span_id()
    if current:
        env[TRACE_PARENT_ENV] = current
    else:
        env.pop(TRACE_PARENT_ENV, None)


# ---------------------------------------------------------------------------
# merging / export

def read_events(root: Union[str, Path]) -> List[Dict[str, Any]]:
    """Merge every per-process event file under ``root`` into one timeline.

    Torn trailing lines (a worker SIGKILLed mid-write) are skipped, like
    the store's journal scan.  Events are ordered by wall ``ts_ns`` so
    processes interleave chronologically.
    """
    root = Path(root)
    events: List[Dict[str, Any]] = []
    for path in sorted(root.glob(EVENT_FILE_GLOB)):
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue  # torn line
            if isinstance(event, dict):
                event.setdefault("file", path.name)
                events.append(event)
    events.sort(key=lambda e: (e.get("ts_ns", 0), str(e.get("id", ""))))
    return events


def export_chrome_trace(events: Iterable[Mapping[str, Any]],
                        path: Union[str, Path]) -> Path:
    """Write ``events`` as Chrome trace-event JSON (Perfetto-loadable).

    Spans become complete (``"ph": "X"``) events with microsecond
    timestamps; per-process metadata events carry the scope name so the
    timeline rows read ``coordinator`` / ``worker-1`` instead of bare
    pids.
    """
    trace_events: List[Dict[str, Any]] = []
    seen_procs: Dict[int, str] = {}
    for event in events:
        etype = event.get("type")
        pid = event.get("pid", 0)
        if etype == "process":
            scope = str(event.get("scope", pid))
            incarnation = int(event.get("incarnation", 0) or 0)
            if incarnation:
                scope = f"{scope} (i{incarnation})"
            seen_procs.setdefault(pid, scope)
        elif etype == "span":
            args = dict(event.get("attrs") or {})
            args["span_id"] = event.get("id")
            if event.get("parent"):
                args["parent_id"] = event.get("parent")
            trace_events.append({
                "name": event.get("name", "?"),
                "cat": "repro",
                "ph": "X",
                "ts": event.get("ts_ns", 0) / 1000.0,
                "dur": event.get("dur_ns", 0) / 1000.0,
                "pid": pid,
                "tid": event.get("tid", 0),
                "args": args,
            })
    metadata = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
         "args": {"name": scope}}
        for pid, scope in sorted(seen_procs.items())
    ]
    payload = {"traceEvents": metadata + trace_events,
               "displayTimeUnit": "ms"}
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


def phase_breakdown(events: Iterable[Mapping[str, Any]],
                    prefix: Optional[str] = None) -> List[Dict[str, Any]]:
    """Aggregate span events into a per-phase time table.

    Returns rows ``{phase, count, total_ms, mean_ms, share}`` sorted by
    total time, where ``share`` is each phase's fraction of the traced
    wall interval (nested spans overlap, so shares need not sum to 1).
    """
    totals: Dict[str, List[float]] = {}
    first_ns: Optional[int] = None
    last_ns: Optional[int] = None
    for event in events:
        if event.get("type") != "span":
            continue
        name = str(event.get("name", "?"))
        if prefix is not None and not name.startswith(prefix):
            continue
        ts = int(event.get("ts_ns", 0))
        dur = int(event.get("dur_ns", 0))
        entry = totals.setdefault(name, [0, 0.0])
        entry[0] += 1
        entry[1] += dur
        first_ns = ts if first_ns is None else min(first_ns, ts)
        end = ts + dur
        last_ns = end if last_ns is None else max(last_ns, end)
    if not totals:
        return []
    wall_ns = max(1, (last_ns or 0) - (first_ns or 0))
    rows = []
    for name, (count, total) in totals.items():
        rows.append({
            "phase": name,
            "count": int(count),
            "total_ms": round(total / 1e6, 3),
            "mean_ms": round(total / count / 1e6, 4),
            "share": round(total / wall_ns, 4),
        })
    rows.sort(key=lambda r: (-r["total_ms"], r["phase"]))
    return rows
