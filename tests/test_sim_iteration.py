"""Tests for the per-iteration cost assembly."""

import numpy as np
import pytest

from repro.baselines import LAERPolicy, StaticEPPolicy
from repro.core.comm_schedule import CommScheduleConfig
from repro.core.cost_model import MoECostModel
from repro.sim.iteration import IterationSimulator
from repro.workloads.model_configs import get_model_config
from repro.workloads.routing_traces import (
    RoutingTraceConfig,
    SyntheticRoutingTraceGenerator,
    balanced_routing,
)

CONFIG = get_model_config("mixtral-8x7b-e8k2")
EXPERT_BYTES = float(CONFIG.expert_param_bytes)


def make_simulator(topology, paradigm="fsep", **kwargs):
    return IterationSimulator(config=CONFIG, topology=topology,
                              tokens_per_device=8192, paradigm=paradigm,
                              num_layers=8, **kwargs)


def skewed_routing(topology, seed=0, layers=2):
    generator = SyntheticRoutingTraceGenerator(RoutingTraceConfig(
        num_devices=topology.num_devices, num_experts=8, num_layers=layers,
        tokens_per_device=8192, top_k=2, skew=0.35, seed=seed))
    return generator.generate(1).iteration(0)


class TestComponentCosts:
    def test_prefetch_paradigm_differences(self, small_topology):
        fsep = make_simulator(small_topology, "fsep")
        fsdp_ep = make_simulator(small_topology, "fsdp_ep", ep_size=4)
        megatron = make_simulator(small_topology, "megatron", ep_size=4, tp_size=2)
        assert fsep.prefetch_time() > 0
        assert fsdp_ep.prefetch_time() > 0
        assert megatron.prefetch_time() == 0.0

    def test_fsep_volume_close_to_fsdp(self, paper_topology):
        """Sec. 3.1: FSEP's restore volume is within ~10-30% of FSDP's."""
        fsep = make_simulator(paper_topology, "fsep")
        fsdp_ep = make_simulator(paper_topology, "fsdp_ep", ep_size=4)
        ratio = fsep.prefetch_time() / fsdp_ep.prefetch_time()
        assert 0.9 < ratio < 1.6

    def test_grad_sync_positive_for_all_paradigms(self, small_topology):
        for paradigm, kwargs in (("fsep", {}), ("fsdp_ep", {"ep_size": 4}),
                                 ("megatron", {"ep_size": 4})):
            sim = make_simulator(small_topology, paradigm, **kwargs)
            assert sim.grad_sync_time() >= 0

    def test_token_a2a_zero_for_local_plan(self, small_topology):
        sim = make_simulator(small_topology)
        n = small_topology.num_devices
        plan = np.zeros((n, 8, n), dtype=np.int64)
        for dev in range(n):
            plan[dev, :, dev] = 10
        assert sim.token_a2a_time(plan) == 0.0

    def test_expert_time_max_vs_mean(self, small_topology):
        sim = make_simulator(small_topology)
        n = small_topology.num_devices
        plan = np.zeros((n, 8, n), dtype=np.int64)
        plan[:, :, 0] = 10  # everything lands on device 0
        assert sim.expert_forward_time(plan) > sim.expert_forward_time_mean(plan)

    def test_exposed_time_from_bytes(self, small_topology):
        sim = make_simulator(small_topology)
        assert sim.exposed_time_from_bytes(0.0) == 0.0
        assert sim.exposed_time_from_bytes(1e9) > 0.0

    def test_validation(self, small_topology):
        with pytest.raises(ValueError):
            IterationSimulator(config=CONFIG, topology=small_topology,
                               tokens_per_device=0)
        with pytest.raises(ValueError):
            IterationSimulator(config=CONFIG, topology=small_topology,
                               tokens_per_device=8, paradigm="bogus")


class TestSimulateIteration:
    def test_imbalanced_slower_than_balanced(self, small_topology):
        sim = make_simulator(small_topology)
        policy = StaticEPPolicy(small_topology, 8, 2, EXPERT_BYTES)
        skewed = policy.decide_iteration(skewed_routing(small_topology, seed=1))
        policy.reset()
        balanced = policy.decide_iteration(balanced_routing(
            small_topology.num_devices, 8, 8192, 2, num_layers=2).iteration(0))
        slow = sim.simulate_iteration(0, skewed)
        fast = sim.simulate_iteration(0, balanced)
        assert slow.total_time > fast.total_time
        assert slow.max_relative_tokens > fast.max_relative_tokens

    def test_breakdown_sums_to_total(self, small_topology):
        sim = make_simulator(small_topology)
        policy = StaticEPPolicy(small_topology, 8, 2, EXPERT_BYTES)
        decisions = policy.decide_iteration(skewed_routing(small_topology))
        result = sim.simulate_iteration(0, decisions)
        assert sum(result.breakdown.values()) == pytest.approx(result.total_time,
                                                               rel=0.05)

    def test_layer_scaling(self, small_topology):
        policy = StaticEPPolicy(small_topology, 8, 2, EXPERT_BYTES)
        decisions = policy.decide_iteration(skewed_routing(small_topology))
        sim8 = make_simulator(small_topology)
        sim16 = IterationSimulator(config=CONFIG, topology=small_topology,
                                   tokens_per_device=8192, num_layers=16)
        t8 = sim8.simulate_iteration(0, decisions).total_time
        t16 = sim16.simulate_iteration(0, decisions).total_time
        assert t16 == pytest.approx(2 * t8, rel=1e-6)

    def test_throughput(self, small_topology):
        sim = make_simulator(small_topology)
        policy = StaticEPPolicy(small_topology, 8, 2, EXPERT_BYTES)
        result = sim.simulate_iteration(
            0, policy.decide_iteration(skewed_routing(small_topology)))
        assert result.throughput(global_tokens=8 * 8192) > 0

    def test_empty_decisions_rejected(self, small_topology):
        sim = make_simulator(small_topology)
        with pytest.raises(ValueError):
            sim.simulate_iteration(0, [])

    def test_comm_opt_off_is_slower(self, small_topology):
        cost_model = MoECostModel.from_model_config(CONFIG, small_topology)
        policy = LAERPolicy(small_topology, 8, 2, EXPERT_BYTES, cost_model)
        routing = skewed_routing(small_topology, seed=2)
        decisions = policy.decide_iteration(routing)
        with_opt = make_simulator(small_topology,
                                  schedule=CommScheduleConfig.all_enabled())
        without = make_simulator(small_topology,
                                 schedule=CommScheduleConfig.none_enabled())
        assert (without.simulate_iteration(0, decisions).total_time
                > with_opt.simulate_iteration(0, decisions).total_time)

    def test_activation_checkpointing_adds_recompute(self, small_topology):
        policy = StaticEPPolicy(small_topology, 8, 2, EXPERT_BYTES)
        decisions = policy.decide_iteration(skewed_routing(small_topology))
        plain = make_simulator(small_topology)
        ckpt = make_simulator(small_topology, activation_checkpointing=True)
        assert (ckpt.simulate_iteration(0, decisions).total_time
                > plain.simulate_iteration(0, decisions).total_time)


class TestCapacityOverflow:
    """The token-drop/recompute penalty for memory-overflowing hotspots."""

    def decisions(self, topology, seed=1):
        policy = StaticEPPolicy(topology, 8, 2, EXPERT_BYTES)
        return policy.decide_iteration(skewed_routing(topology, seed=seed))

    def test_off_by_default(self, small_topology):
        sim = make_simulator(small_topology)
        result = sim.simulate_iteration(0, self.decisions(small_topology))
        assert "overflow" not in result.breakdown
        assert all(layer.overflow_time == 0.0 for layer in result.layers)

    def test_penalty_charges_overflowing_tokens(self, small_topology):
        decisions = self.decisions(small_topology)
        plain = make_simulator(small_topology)
        base = plain.simulate_iteration(0, decisions)
        # A capacity below the hottest device's routed tokens must overflow.
        capacity = max(layer.max_tokens for layer in base.layers) // 2
        charged = make_simulator(small_topology, overflow_penalty=1.0,
                                 token_capacity=capacity)
        result = charged.simulate_iteration(0, decisions)
        assert result.total_time > base.total_time
        assert result.breakdown["overflow"] > 0.0
        assert any(layer.overflow_tokens > 0 for layer in result.layers)
        # The charge scales linearly with the penalty factor.
        double = make_simulator(small_topology, overflow_penalty=2.0,
                                token_capacity=capacity)
        assert double.simulate_iteration(0, decisions).breakdown["overflow"] \
            == pytest.approx(2 * result.breakdown["overflow"])

    def test_no_overflow_below_capacity(self, small_topology):
        decisions = self.decisions(small_topology)
        plain = make_simulator(small_topology)
        base = plain.simulate_iteration(0, decisions)
        roomy = make_simulator(small_topology, overflow_penalty=1.0,
                               token_capacity=10 ** 9)
        result = roomy.simulate_iteration(0, decisions)
        assert result.total_time == pytest.approx(base.total_time)
        assert result.breakdown["overflow"] == 0.0

    def test_capacity_derived_from_device_memory(self, small_topology):
        for paradigm, kwargs in (("fsep", {}), ("fsdp_ep", {"ep_size": 4}),
                                 ("megatron", {"ep_size": 4, "tp_size": 2})):
            sim = make_simulator(small_topology, paradigm,
                                 overflow_penalty=1.0, **kwargs)
            assert sim.device_token_capacity() > 0
        pinned = make_simulator(small_topology, overflow_penalty=1.0,
                                token_capacity=123)
        assert pinned.device_token_capacity() == 123

    def test_derived_capacity_is_in_routed_token_units(self):
        """The routing plan's per-device sums count top_k routed copies per
        input token, so the memory-derived budget must carry the same
        factor: a memory-feasible, perfectly balanced workload must not
        read as overflowing."""
        from repro.cluster.memory import MemoryModel
        from repro.cluster.topology import ClusterTopology

        # Big enough that Mixtral-8x7B's sharded states genuinely fit.
        topology = ClusterTopology(num_nodes=8, devices_per_node=8)
        sim = make_simulator(topology, overflow_penalty=1.0)
        memory = MemoryModel(CONFIG, topology, activation_checkpointing=False)
        input_budget = memory.max_tokens_per_device("fsep")
        assert input_budget >= 8192  # the config is memory-feasible here
        assert sim.device_token_capacity() == input_budget * CONFIG.top_k
        # Balanced routing at the simulator's own tokens_per_device (well
        # within memory) must charge zero overflow.
        policy = StaticEPPolicy(topology, 8, 2, EXPERT_BYTES)
        decisions = policy.decide_iteration(balanced_routing(
            topology.num_devices, 8, 8192, 2, num_layers=2).iteration(0))
        result = sim.simulate_iteration(0, decisions)
        assert result.breakdown["overflow"] == 0.0

    def test_validation(self, small_topology):
        with pytest.raises(ValueError, match="overflow_penalty"):
            make_simulator(small_topology, overflow_penalty=-1.0)
        with pytest.raises(ValueError, match="token_capacity"):
            make_simulator(small_topology, token_capacity=0)


class TestDropPolicies:
    """Paper-faithful alternatives to the linear overflow penalty."""

    def decisions(self, topology, seed=1):
        policy = StaticEPPolicy(topology, 8, 2, EXPERT_BYTES)
        return policy.decide_iteration(skewed_routing(topology, seed=seed))

    def overflowing_capacity(self, topology, decisions):
        base = make_simulator(topology).simulate_iteration(0, decisions)
        return max(layer.max_tokens for layer in base.layers) // 2

    def test_truncate_drops_tokens_instead_of_charging(self, small_topology):
        decisions = self.decisions(small_topology)
        base = make_simulator(small_topology).simulate_iteration(0, decisions)
        capacity = self.overflowing_capacity(small_topology, decisions)
        sim = make_simulator(small_topology, drop_policy="truncate",
                             token_capacity=capacity)
        result = sim.simulate_iteration(0, decisions)
        # Clamping the hottest device's compute makes the step *faster*:
        # truncation trades quality (dropped tokens) for time.
        assert result.total_time < base.total_time
        assert result.breakdown["overflow"] == 0.0
        assert any(layer.dropped_tokens > 0 for layer in result.layers)
        assert all(layer.overflow_time == 0.0 for layer in result.layers)

    def test_truncate_activates_capacity_without_penalty(self, small_topology):
        decisions = self.decisions(small_topology)
        capacity = self.overflowing_capacity(small_topology, decisions)
        # No overflow_penalty set: the non-default policy alone turns the
        # capacity model on.
        sim = make_simulator(small_topology, drop_policy="truncate",
                             token_capacity=capacity)
        result = sim.simulate_iteration(0, decisions)
        assert "overflow" in result.breakdown
        assert any(layer.overflow_tokens > 0 for layer in result.layers)

    def test_truncate_is_noop_below_capacity(self, small_topology):
        decisions = self.decisions(small_topology)
        base = make_simulator(small_topology).simulate_iteration(0, decisions)
        sim = make_simulator(small_topology, drop_policy="truncate",
                             token_capacity=10 ** 9)
        result = sim.simulate_iteration(0, decisions)
        assert result.total_time == pytest.approx(base.total_time)
        assert all(layer.dropped_tokens == 0 for layer in result.layers)

    def test_recompute_charges_overflow_at_unit_cost(self, small_topology):
        decisions = self.decisions(small_topology)
        base = make_simulator(small_topology).simulate_iteration(0, decisions)
        capacity = self.overflowing_capacity(small_topology, decisions)
        sim = make_simulator(small_topology, drop_policy="recompute",
                             token_capacity=capacity)
        result = sim.simulate_iteration(0, decisions)
        assert result.total_time > base.total_time
        assert result.breakdown["overflow"] > 0.0
        assert all(layer.dropped_tokens == 0 for layer in result.layers)
        # Recompute equals the linear penalty at factor 1.0 ...
        unit = make_simulator(small_topology, overflow_penalty=1.0,
                              token_capacity=capacity)
        assert result.total_time == pytest.approx(
            unit.simulate_iteration(0, decisions).total_time)
        # ... and ignores the penalty factor entirely.
        scaled = make_simulator(small_topology, drop_policy="recompute",
                                overflow_penalty=3.0, token_capacity=capacity)
        assert scaled.simulate_iteration(0, decisions).total_time \
            == pytest.approx(result.total_time)

    def test_policies_rank_consistently(self, small_topology):
        decisions = self.decisions(small_topology)
        capacity = self.overflowing_capacity(small_topology, decisions)
        times = {}
        for policy in ("truncate", "recompute"):
            sim = make_simulator(small_topology, drop_policy=policy,
                                 token_capacity=capacity)
            times[policy] = sim.simulate_iteration(0, decisions).total_time
        assert times["truncate"] < times["recompute"]

    def test_validation(self, small_topology):
        with pytest.raises(ValueError, match="drop_policy"):
            make_simulator(small_topology, drop_policy="discard")
