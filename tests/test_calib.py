"""Tests for the calibration subsystem (repro.calib)."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.api.specs import ClusterSpec, ExperimentSpec, WorkloadSpec
from repro.calib import (
    CalibrationProfile,
    GroundTruthMachine,
    MeasureConfig,
    ObservationSet,
    fit_calibration,
    fit_report,
    fit_summary_line,
    run_microbenchmarks,
)
from repro.calib.measure import CommObservation
from repro.cluster.topology import ClusterTopology, LinkType
from repro.store.result_store import run_id_for


def drawn_profile(seed: int = 3) -> CalibrationProfile:
    return GroundTruthMachine.draw(seed).as_profile(source=f"seed {seed}")


# ----------------------------------------------------------------------
# CalibrationProfile
# ----------------------------------------------------------------------
class TestCalibrationProfile:
    def test_json_round_trip_is_lossless(self, tmp_path):
        profile = drawn_profile()
        assert CalibrationProfile.from_json(profile.to_json()) == profile
        path = profile.save(tmp_path / "profile.json")
        assert CalibrationProfile.load(path) == profile

    def test_identity_serializes_to_nothing(self):
        identity = CalibrationProfile.identity()
        assert identity.is_identity
        assert identity.to_dict() == {}
        assert CalibrationProfile.from_dict({}) == identity
        assert not drawn_profile().is_identity

    def test_profile_id_is_content_hashed(self):
        assert drawn_profile(1).profile_id == drawn_profile(1).profile_id
        assert drawn_profile(1).profile_id != drawn_profile(2).profile_id
        # Provenance is metadata, not identity.
        relabeled = dataclasses.replace(drawn_profile(1), source="elsewhere")
        assert relabeled.profile_id == drawn_profile(1).profile_id

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            CalibrationProfile.from_dict({"warp_factor": 9})

    def test_validation(self):
        with pytest.raises(ValueError):
            CalibrationProfile(flops_scale=0.0)
        with pytest.raises(ValueError):
            CalibrationProfile(intra_node_bandwidth_scale=-1.0)
        with pytest.raises(ValueError):
            CalibrationProfile(inter_node_latency_s=-1e-6)

    def test_apply_to_topology_scales_and_replaces(self, small_topology):
        profile = CalibrationProfile(
            intra_node_bandwidth_scale=0.5, inter_node_bandwidth_scale=0.25,
            intra_node_latency_s=1e-5, inter_node_latency_s=4e-5,
            flops_scale=0.8)
        calibrated = profile.apply_to_topology(small_topology)
        assert calibrated.intra_node_bandwidth == \
            small_topology.intra_node_bandwidth * 0.5
        assert calibrated.inter_node_bandwidth == \
            small_topology.inter_node_bandwidth * 0.25
        assert calibrated.intra_node_latency == 1e-5
        assert calibrated.inter_node_latency == 4e-5
        assert calibrated.device_spec.effective_flops == pytest.approx(
            small_topology.device_spec.effective_flops * 0.8)
        # Identity application changes nothing, not even the device spec.
        same = CalibrationProfile.identity().apply_to_topology(small_topology)
        assert same.device_spec is small_topology.device_spec


# ----------------------------------------------------------------------
# Spec threading + run-id invariance
# ----------------------------------------------------------------------
def tiny_spec(**overrides) -> ExperimentSpec:
    defaults = dict(
        name="calib-test",
        cluster=ClusterSpec(num_nodes=2, devices_per_node=4),
        workload=WorkloadSpec(tokens_per_device=512, layers=1, iterations=2,
                              warmup=1, seed=11),
        systems=("fsdp_ep",),
        reference="fsdp_ep",
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestSpecCalibration:
    def test_uncalibrated_spec_emits_no_calibration_key(self):
        assert "calibration" not in tiny_spec().to_dict()

    def test_uncalibrated_run_id_is_unchanged_by_the_field(self):
        # The field exists but, unset, must not perturb the content hash —
        # every run id ever stored stays addressable.
        spec = tiny_spec()
        assert spec.calibration is None
        assert run_id_for(spec) == run_id_for(tiny_spec())
        assert run_id_for(spec) != run_id_for(
            spec.with_calibration(drawn_profile()))

    def test_calibrated_spec_round_trips_losslessly(self):
        spec = tiny_spec().with_calibration(drawn_profile())
        restored = ExperimentSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert restored.calibration == spec.calibration
        assert run_id_for(restored) == run_id_for(spec)

    def test_calibration_changes_simulated_throughput(self):
        from repro.api.runner import run_experiment
        baseline = run_experiment(tiny_spec(), parallel=False)
        calibrated = run_experiment(
            tiny_spec().with_calibration(drawn_profile()), parallel=False)
        slow = calibrated.systems["fsdp_ep"].throughput
        fast = baseline.systems["fsdp_ep"].throughput
        # The drawn machine is strictly degraded (bw, flops < 1; added
        # latency; byte overhead >= 1), so throughput must drop.
        assert slow < fast


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------
class TestMeasurement:
    def test_ground_truth_draw_is_deterministic(self):
        assert GroundTruthMachine.draw(7) == GroundTruthMachine.draw(7)
        assert GroundTruthMachine.draw(7) != GroundTruthMachine.draw(8)
        machine = GroundTruthMachine.draw(7)
        assert GroundTruthMachine.from_dict(machine.to_dict()) == machine

    def test_microbenchmarks_cover_all_terms(self, small_topology):
        observations = run_microbenchmarks(
            small_topology, GroundTruthMachine.draw(0),
            config=MeasureConfig.tiny(), seed=0)
        counts = observations.counts()
        assert counts["comm"] > 0
        assert counts["compute"] == small_topology.num_devices * 2
        assert counts["all_to_all"] == 1
        kinds = {small_topology.link_type(o.link_src, o.link_dst)
                 for o in observations.comm}
        assert kinds == {LinkType.INTRA_NODE, LinkType.INTER_NODE}

    def test_observation_csv_round_trip(self, small_topology, tmp_path):
        observations = run_microbenchmarks(
            small_topology, GroundTruthMachine.draw(2),
            config=MeasureConfig.tiny(), seed=2)
        observations.save(tmp_path / "obs")
        restored = ObservationSet.load(tmp_path / "obs")
        assert restored.comm == observations.comm
        assert restored.compute == observations.compute
        assert restored.all_to_all == observations.all_to_all
        assert restored.model == observations.model
        assert restored.num_nodes == observations.num_nodes

    def test_load_rejects_empty_directory(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ValueError, match="no observations"):
            ObservationSet.load(tmp_path / "empty")


# ----------------------------------------------------------------------
# Fitting
# ----------------------------------------------------------------------
class TestFit:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_noise_free_fit_recovers_the_hidden_machine(
            self, small_topology, seed):
        machine = GroundTruthMachine.draw(seed)
        observations = run_microbenchmarks(small_topology, machine, seed=seed)
        fit = fit_calibration(observations)
        truth = machine.as_profile()
        assert fit.r2_min >= 0.99
        assert fit.profile.intra_node_bandwidth_scale == pytest.approx(
            truth.intra_node_bandwidth_scale, rel=1e-9)
        assert fit.profile.inter_node_bandwidth_scale == pytest.approx(
            truth.inter_node_bandwidth_scale, rel=1e-9)
        assert fit.profile.intra_node_latency_s == pytest.approx(
            truth.intra_node_latency_s, rel=1e-9)
        assert fit.profile.inter_node_latency_s == pytest.approx(
            truth.inter_node_latency_s, rel=1e-9)
        assert fit.profile.flops_scale == pytest.approx(
            truth.flops_scale, rel=1e-9)
        assert fit.profile.comm_bytes_scale == pytest.approx(
            truth.comm_bytes_scale, rel=1e-9)
        assert fit_summary_line(fit).startswith("calib fit: ok")

    def test_robust_fit_survives_noise_and_outliers(self, small_topology):
        machine = GroundTruthMachine.draw(4)
        observations = run_microbenchmarks(
            small_topology, machine,
            config=MeasureConfig(noise=0.03), seed=4)
        # One wildly corrupted measurement on top of the noise.
        bad = observations.comm[0]
        observations.comm[0] = CommObservation(
            link_src=bad.link_src, link_dst=bad.link_dst,
            num_bytes=bad.num_bytes, seconds=bad.seconds * 50.0)
        robust = fit_calibration(observations, robust=True)
        assert robust.profile.intra_node_bandwidth_scale == pytest.approx(
            machine.intra_node_bandwidth_scale, rel=0.15)
        assert robust.profile.inter_node_bandwidth_scale == pytest.approx(
            machine.inter_node_bandwidth_scale, rel=0.15)

    def test_fit_requires_observations(self):
        with pytest.raises(ValueError):
            fit_calibration(ObservationSet())

    def test_report_renders_all_sections(self, small_topology):
        observations = run_microbenchmarks(
            small_topology, GroundTruthMachine.draw(1),
            config=MeasureConfig.tiny(), seed=1)
        fit = fit_calibration(observations)
        text = fit_report(fit, title="unit")
        assert "Fitted profile" in text
        assert "Worst-fit links" in text
        assert "Largest residuals" in text
        assert fit.profile.profile_id in fit_summary_line(fit)


# ----------------------------------------------------------------------
# Calibrated topology feeds the whole cost stack
# ----------------------------------------------------------------------
class TestEndToEnd:
    def test_fitted_profile_reproduces_hidden_machine_timings(
            self, small_topology):
        """A fit applied to the nominal topology predicts the hidden one."""
        machine = GroundTruthMachine.draw(9)
        observations = run_microbenchmarks(small_topology, machine, seed=9)
        fit = fit_calibration(observations)
        calibrated = fit.profile.apply_to_topology(small_topology)
        hidden = machine.true_topology(small_topology)
        size = 64 * 1024 * 1024
        for src, dst in ((0, 1), (0, 4), (3, 7)):
            assert calibrated.p2p_time(src, dst, size) == pytest.approx(
                hidden.p2p_time(src, dst, size), rel=1e-9)
        assert calibrated.device_spec.effective_flops == pytest.approx(
            hidden.device_spec.effective_flops, rel=1e-9)
