"""Tests for the Fig. 5 communication scheduling model."""

import pytest

from repro.core.comm_schedule import (
    CommScheduleConfig,
    LayerTimings,
    schedule_iteration,
    schedule_layer,
)


def timings(attention=2.0, expert=6.0, a2a=1.0, prefetch=3.0, attn_prefetch=0.5,
            grad_sync=3.0):
    return LayerTimings(attention_compute=attention, expert_compute=expert,
                        token_a2a=a2a, expert_prefetch=prefetch,
                        attention_prefetch=attn_prefetch, grad_sync=grad_sync)


class TestConfigs:
    def test_presets(self):
        assert CommScheduleConfig.all_enabled().relaxed_prefetch
        none = CommScheduleConfig.none_enabled()
        assert not (none.relaxed_prefetch or none.schedule_after_a2a
                    or none.delay_grad_sync)

    def test_validation(self):
        with pytest.raises(ValueError):
            CommScheduleConfig(contention_slowdown=2.0)
        with pytest.raises(ValueError):
            LayerTimings(attention_compute=-1, expert_compute=1, token_a2a=1,
                         expert_prefetch=1)


class TestScheduleLayer:
    def test_optimised_schedule_is_faster(self):
        t = timings()
        optimised = schedule_layer(t, CommScheduleConfig.all_enabled())
        unoptimised = schedule_layer(t, CommScheduleConfig.none_enabled())
        assert optimised.total < unoptimised.total

    def test_relaxed_prefetch_hides_communication(self):
        """Prefetch longer than attention but shorter than expert compute is
        fully hidden only with the relaxed constraint (Fig. 5b)."""
        t = timings(attention=1.0, expert=8.0, prefetch=4.0, attn_prefetch=0.0)
        relaxed = schedule_layer(t, CommScheduleConfig(
            relaxed_prefetch=True, schedule_after_a2a=True, delay_grad_sync=True))
        strict = schedule_layer(t, CommScheduleConfig(
            relaxed_prefetch=False, schedule_after_a2a=True, delay_grad_sync=True))
        assert relaxed.exposed_prefetch == 0.0
        assert strict.exposed_prefetch > 0.0

    def test_delayed_grad_sync_hides_communication(self):
        t = timings(attention=1.0, expert=8.0, grad_sync=4.0)
        delayed = schedule_layer(t, CommScheduleConfig(
            relaxed_prefetch=True, schedule_after_a2a=True, delay_grad_sync=True))
        eager = schedule_layer(t, CommScheduleConfig(
            relaxed_prefetch=True, schedule_after_a2a=True, delay_grad_sync=False))
        assert delayed.exposed_grad_sync == 0.0
        assert eager.exposed_grad_sync > 0.0

    def test_contention_inflates_a2a(self):
        t = timings()
        with_contention = schedule_layer(t, CommScheduleConfig(
            relaxed_prefetch=True, schedule_after_a2a=False, delay_grad_sync=True))
        without = schedule_layer(t, CommScheduleConfig(
            relaxed_prefetch=True, schedule_after_a2a=True, delay_grad_sync=True))
        assert with_contention.a2a_time > without.a2a_time

    def test_forward_critical_path_lower_bound(self):
        t = timings()
        result = schedule_layer(t, CommScheduleConfig.all_enabled())
        assert result.forward_time >= t.attention_compute + 2 * t.token_a2a + t.expert_compute

    def test_backward_counts_double_compute(self):
        t = timings(prefetch=0.0, attn_prefetch=0.0, grad_sync=0.0)
        result = schedule_layer(t, CommScheduleConfig.all_enabled())
        assert result.backward_time == pytest.approx(
            2 * (t.attention_compute + t.expert_compute) + 2 * t.token_a2a)

    def test_zero_communication_layers(self):
        t = LayerTimings(attention_compute=1.0, expert_compute=2.0, token_a2a=0.0,
                         expert_prefetch=0.0)
        result = schedule_layer(t, CommScheduleConfig.none_enabled())
        assert result.exposed_prefetch == 0.0
        assert result.a2a_time == 0.0


class TestScheduleIteration:
    def test_aggregates_layers(self):
        per_layer = [timings(), timings(expert=4.0)]
        totals = schedule_iteration(per_layer, CommScheduleConfig.all_enabled())
        assert totals["iteration_time"] > 0
        assert totals["expert_compute"] == pytest.approx(3 * (6.0 + 4.0))
        assert totals["attention"] == pytest.approx(3 * 2 * 2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            schedule_iteration([], CommScheduleConfig.all_enabled())

    def test_optimisations_reduce_iteration_time(self):
        per_layer = [timings() for _ in range(4)]
        on = schedule_iteration(per_layer, CommScheduleConfig.all_enabled())
        off = schedule_iteration(per_layer, CommScheduleConfig.none_enabled())
        assert on["iteration_time"] < off["iteration_time"]
        assert on["exposed_comm"] <= off["exposed_comm"]
