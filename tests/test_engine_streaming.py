"""Tests for streaming engine consumption, parallel comparison and resets."""

import numpy as np
import pytest

from repro.cluster.topology import ClusterTopology
from repro.core.layout_tuner import TunerConfig
from repro.baselines.laer import LAERPolicy
from repro.sim.engine import (
    RunResult,
    TrainingRunSimulator,
    compare_systems,
    compare_systems_detailed,
    resolve_execution_mode,
)
from repro.sim.iteration import IterationResult, LayerResult
from repro.sim.systems import SystemBuildContext, available_systems, make_system
from repro.workloads.model_configs import get_model_config
from repro.workloads.scenarios import ScenarioContext, make_scenario

CONFIG = get_model_config("mixtral-8x7b-e8k2")


@pytest.fixture(scope="module")
def topology():
    return ClusterTopology(num_nodes=1, devices_per_node=4)


@pytest.fixture(scope="module")
def context(topology):
    return ScenarioContext(
        num_devices=topology.num_devices, num_experts=CONFIG.num_experts,
        num_layers=2, tokens_per_device=2048, top_k=CONFIG.top_k,
        iterations=6, seed=13)


def _assert_runs_identical(a: RunResult, b: RunResult) -> None:
    assert a.num_iterations == b.num_iterations
    assert a.tokens_per_iteration == b.tokens_per_iteration
    assert a.mean_iteration_time == b.mean_iteration_time
    assert a.throughput == b.throughput
    assert a.mean_breakdown() == b.mean_breakdown()
    assert a.mean_relative_max_tokens() == b.mean_relative_max_tokens()
    assert (a.per_layer_relative_max_tokens()
            == b.per_layer_relative_max_tokens())


class TestStreaming:
    @pytest.mark.parametrize("system_name", ["fsdp_ep", "laer", "fastermoe"])
    def test_streamed_equals_materialized(self, topology, context,
                                          system_name):
        """Same seed => bit-identical RunResult, streamed or materialized."""
        source = make_scenario("bursty-churn", context)
        system = make_system(system_name, CONFIG, topology, 2048)
        streamed = TrainingRunSimulator(system).run(source, warmup=1)
        materialized = TrainingRunSimulator(system).run(
            source.materialize(), warmup=1)
        _assert_runs_identical(streamed, materialized)

    def test_constant_memory_mode_matches_aggregates(self, topology, context):
        source = make_scenario("drifting", context)
        system = make_system("fsdp_ep", CONFIG, topology, 2048)
        full = TrainingRunSimulator(system).run(source, warmup=1)
        lean = TrainingRunSimulator(system).run(source, warmup=1,
                                                keep_iterations=False)
        assert lean.iterations == []          # O(1) memory in iterations
        assert len(full.iterations) == full.num_iterations == 5
        _assert_runs_identical(full, lean)

    def test_source_cap_and_warmup_validation(self, topology, context):
        source = make_scenario("drifting", context)
        system = make_system("fsdp_ep", CONFIG, topology, 2048)
        capped = TrainingRunSimulator(system).run(source, max_iterations=2,
                                                  warmup=1)
        assert capped.num_iterations == 2
        with pytest.raises(ValueError, match="warmup leaves no iterations"):
            TrainingRunSimulator(system).run(source, warmup=99)


class TestParallelCompare:
    def test_parallel_matches_sequential(self, topology, context, monkeypatch):
        # Pretend the host is large so the comparison genuinely runs in
        # worker processes even on small CI runners (the auto-demotion
        # would otherwise reduce this to sequential-vs-sequential).
        monkeypatch.setattr("repro.sim.engine._usable_cpus", lambda: 8)
        source = make_scenario("phase-shift", context)
        names = ("megatron", "fsdp_ep", "flexmoe", "laer")

        def build_all():
            return [make_system(name, CONFIG, topology, 2048)
                    for name in names]

        sequential = compare_systems(build_all(), source, warmup=1,
                                     parallel=False)
        parallel, mode = compare_systems_detailed(build_all(), source,
                                                  warmup=1, parallel=True)
        assert mode == "parallel"
        assert set(sequential) == set(parallel) == set(names)
        for name in names:
            _assert_runs_identical(sequential[name], parallel[name])

    def test_unpicklable_system_falls_back_to_sequential(self, topology,
                                                         context,
                                                         monkeypatch):
        # Force the parallel path regardless of the host's core count (the
        # auto-demotion would otherwise mask the infra-fallback behaviour).
        monkeypatch.setattr("repro.sim.engine._usable_cpus", lambda: 8)
        source = make_scenario("drifting", context)
        systems = [make_system("fsdp_ep", CONFIG, topology, 2048),
                   make_system("megatron", CONFIG, topology, 2048)]
        broken = make_system("laer", CONFIG, topology, 2048)
        broken.policy.unpicklable = lambda: None  # closures don't pickle
        systems.append(broken)
        with pytest.warns(RuntimeWarning, match="falling back to sequential"):
            results, mode = compare_systems_detailed(systems, source, warmup=1,
                                                     parallel=True)
        assert mode == "sequential-fallback"
        assert results["fsdp_ep"].throughput > 0
        assert results["laer"].throughput > 0

    def test_parallel_demoted_on_small_hosts_or_comparisons(self, monkeypatch):
        monkeypatch.setattr("repro.sim.engine._usable_cpus", lambda: 1)
        assert resolve_execution_mode(True, 8) == "sequential-auto"
        monkeypatch.setattr("repro.sim.engine._usable_cpus", lambda: 8)
        assert resolve_execution_mode(True, 2) == "sequential-auto"
        assert resolve_execution_mode(True, 3) == "parallel"
        assert resolve_execution_mode(False, 8) == "sequential"

    def test_detailed_mode_recorded(self, topology, context):
        source = make_scenario("drifting", context)
        systems = [make_system("fsdp_ep", CONFIG, topology, 2048),
                   make_system("laer", CONFIG, topology, 2048)]
        runs, mode = compare_systems_detailed(systems, source, warmup=1,
                                              parallel=False)
        assert mode == "sequential"
        assert set(runs) == {"fsdp_ep", "laer"}

    def test_simulation_errors_propagate_without_sequential_rerun(
            self, topology, context, monkeypatch):
        """Worker-side simulation failures are not executor failures."""
        monkeypatch.setattr("repro.sim.engine._usable_cpus", lambda: 8)
        source = make_scenario("drifting", context)
        systems = [make_system("fsdp_ep", CONFIG, topology, 2048),
                   make_system("megatron", CONFIG, topology, 2048),
                   make_system("laer", CONFIG, topology, 2048)]
        with pytest.raises(ValueError, match="warmup leaves no iterations"):
            compare_systems(systems, source, warmup=99, parallel=True)


class TestDegenerateResults:
    def test_zero_iterations_throughput_is_zero(self):
        empty = RunResult(system="empty", tokens_per_iteration=1000)
        assert empty.throughput == 0.0

    def test_zero_time_throughput_is_zero(self):
        degenerate = RunResult(
            system="degenerate", tokens_per_iteration=1000,
            iterations=[IterationResult(iteration=0, total_time=0.0,
                                        breakdown={}, layers=[])])
        assert degenerate.mean_iteration_time == 0.0
        assert degenerate.throughput == 0.0

    def test_speedup_over_handles_degenerate_pairs(self):
        layer = LayerResult(layer=0, forward_time=1.0, backward_time=1.0,
                            attention_time=0.5, expert_compute_time=1.0,
                            all_to_all_time=0.4, exposed_comm_time=0.1,
                            relayout_time=0.0, max_tokens=10,
                            ideal_tokens=10.0)
        real = RunResult(
            system="real", tokens_per_iteration=1000,
            iterations=[IterationResult(iteration=0, total_time=2.0,
                                        breakdown={"expert_compute": 2.0},
                                        layers=[layer])])
        empty_a = RunResult(system="a", tokens_per_iteration=1000)
        empty_b = RunResult(system="b", tokens_per_iteration=1000)
        assert empty_a.speedup_over(empty_b) == 1.0   # both degenerate
        assert real.speedup_over(empty_a) == float("inf")
        assert empty_a.speedup_over(real) == 0.0
        assert real.speedup_over(real) == 1.0


class TestResetRegression:
    def test_back_to_back_runs_identical_for_every_system(self, topology,
                                                          context):
        """reset() must clear *all* adaptive state, not just the counter."""
        source = make_scenario("bursty-churn", context)
        for name in available_systems():
            system = make_system(name, CONFIG, topology, 2048)
            simulator = TrainingRunSimulator(system)
            first = simulator.run(source, warmup=1)
            second = simulator.run(source, warmup=1)
            _assert_runs_identical(first, second)

    def test_laer_perturbation_rng_reset_between_runs(self, topology,
                                                      context):
        """A tuner that consumes its perturbation RNG still repeats exactly."""
        source = make_scenario("drifting", context)
        ctx = SystemBuildContext(name="laer_rng", config=CONFIG,
                                 topology=topology, tokens_per_device=2048)
        policy = LAERPolicy(*ctx.policy_args(), ctx.cost_model(),
                            tuner_config=TunerConfig(num_candidates=5))
        system = ctx.build(policy)
        simulator = TrainingRunSimulator(system)
        state_before = policy.planner.tuner._rng.bit_generator.state
        first = simulator.run(source, warmup=1)
        # The run consumed perturbation draws; a reset must restore the seed.
        system.reset()
        assert (policy.planner.tuner._rng.bit_generator.state
                == state_before)
        second = simulator.run(source, warmup=1)
        _assert_runs_identical(first, second)
