"""Tests for the declarative experiment API (specs, registry, runner)."""

import json

import pytest

from repro.api import (
    ClusterSpec,
    ExperimentResult,
    ExperimentRunner,
    ExperimentSpec,
    SystemSpec,
    WorkloadSpec,
    run_experiment,
    run_planner_study,
)
from repro.baselines import StaticEPPolicy
from repro.sim.engine import compare_systems
from repro.sim.systems import (
    available_systems,
    make_system,
    register_system,
    register_system_variant,
    unregister_system,
)
from repro.workloads.scenarios import available_scenarios


def small_spec(**overrides) -> ExperimentSpec:
    """A fast 4-device experiment used throughout these tests."""
    defaults = dict(
        name="api-test",
        cluster=ClusterSpec(num_nodes=1, devices_per_node=4),
        workload=WorkloadSpec(tokens_per_device=2048, layers=2,
                              iterations=3, warmup=1, seed=7),
        systems=("fsdp_ep", "laer"),
        reference="fsdp_ep",
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestSpecRoundTrip:
    def test_default_spec_round_trips(self):
        spec = ExperimentSpec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_custom_spec_round_trips_through_json(self):
        spec = small_spec(systems=(
            SystemSpec("laer"),
            SystemSpec("laer", label="laer_raw", options={"comm_opt": False}),
            "fsdp_ep",
        ), reference="laer")
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored == spec
        # The JSON itself is plain data (no repr round-tripping involved).
        assert json.loads(spec.to_json())["reference"] == "laer"

    def test_save_and_load(self, tmp_path):
        spec = small_spec()
        path = spec.save(tmp_path / "exp.json")
        assert ExperimentSpec.load(path) == spec

    def test_string_systems_normalised(self):
        spec = small_spec(systems=("fsdp_ep", "laer"))
        assert all(isinstance(s, SystemSpec) for s in spec.systems)
        assert spec.system_keys == ("fsdp_ep", "laer")

    @pytest.mark.parametrize("scenario", available_scenarios())
    def test_every_scenario_round_trips_through_json(self, scenario):
        spec = small_spec(workload=WorkloadSpec(
            tokens_per_device=2048, layers=2, iterations=3, warmup=1,
            seed=7, scenario=scenario))
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.workload.scenario == scenario

    def test_scenario_params_round_trip(self):
        spec = small_spec(workload=WorkloadSpec(
            tokens_per_device=2048, layers=2, iterations=3, warmup=1,
            scenario="bursty-churn", params={"period": 20, "burst_length": 4}))
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.workload.params == {"period": 20, "burst_length": 4}
        assert json.loads(spec.to_json())["workload"]["scenario"] \
            == "bursty-churn"

    def test_pre_scenario_spec_json_still_loads(self):
        """Old (PR 1 era) spec JSON has no scenario/params keys."""
        legacy = ExperimentSpec().to_dict()
        del legacy["workload"]["scenario"]
        del legacy["workload"]["params"]
        spec = ExperimentSpec.from_dict(legacy)
        assert spec.workload.scenario == "drifting"
        assert spec.workload.params == {}

    def test_pre_overflow_spec_json_still_loads(self):
        """Old (PR <= 4 era) spec JSON has no overflow knobs."""
        legacy = ExperimentSpec().to_dict()
        assert "overflow_penalty" not in legacy  # defaults stay unserialized
        assert "token_capacity" not in legacy
        spec = ExperimentSpec.from_dict(legacy)
        assert spec.overflow_penalty == 0.0
        assert spec.token_capacity is None

    def test_default_overflow_knobs_keep_run_ids_stable(self):
        """Content-hashed run ids predate the overflow knobs: a spec that
        does not use them must hash exactly as it did before they existed,
        or every pre-existing store would stop resuming."""
        from repro.store import run_id_for, spec_fingerprint

        plain = small_spec()
        explicit_defaults = small_spec(overflow_penalty=0.0,
                                       token_capacity=None)
        assert spec_fingerprint(plain) == spec_fingerprint(explicit_defaults)
        assert run_id_for(plain) == run_id_for(explicit_defaults)
        assert spec_fingerprint(plain) != spec_fingerprint(
            small_spec(overflow_penalty=1.0))

    def test_overflow_knobs_round_trip(self):
        spec = small_spec(overflow_penalty=1.5, token_capacity=4096)
        data = spec.to_dict()
        assert data["overflow_penalty"] == 1.5
        assert data["token_capacity"] == 4096
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.overflow_penalty == 1.5
        assert restored.token_capacity == 4096

    def test_invalid_overflow_knobs_rejected(self):
        with pytest.raises(ValueError, match="overflow_penalty"):
            small_spec(overflow_penalty=-0.5)
        with pytest.raises(ValueError, match="token_capacity"):
            small_spec(token_capacity=0)


class TestSpecValidation:
    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown ExperimentSpec field"):
            ExperimentSpec.from_dict({"nme": "typo"})

    def test_unknown_nested_field_rejected(self):
        with pytest.raises(ValueError, match="unknown WorkloadSpec field"):
            ExperimentSpec.from_dict({"workload": {"modle": "x"}})

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            WorkloadSpec(model="gpt-4")

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError, match="unknown system"):
            small_spec(systems=("deepspeed",))

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError, match="duplicate system label"):
            small_spec(systems=("laer", "laer"))

    def test_unknown_system_option_rejected_at_spec_load(self):
        with pytest.raises(ValueError, match="does not accept parameter"):
            SystemSpec("laer", options={"comm_op": False})  # typo of comm_opt
        with pytest.raises(ValueError, match="does not accept parameter"):
            SystemSpec("fsdp_ep", options={"variant": "full"})

    def test_empty_systems_rejected(self):
        with pytest.raises(ValueError, match="at least one system"):
            small_spec(systems=())

    def test_invalid_cluster_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_nodes=0)

    def test_invalid_workload_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(iterations=0)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            WorkloadSpec(scenario="full-moon")

    def test_unknown_scenario_param_rejected(self):
        with pytest.raises(ValueError, match="does not accept parameter"):
            WorkloadSpec(scenario="bursty-churn", params={"burst_len": 2})
        with pytest.raises(ValueError, match="does not accept parameter"):
            WorkloadSpec(scenario="steady", params={"period": 4})


class TestRegistry:
    def test_all_builtin_systems_registered(self):
        assert available_systems() == [
            "megatron", "fsdp_ep", "fastermoe", "smartmoe", "prophet",
            "flexmoe", "laer", "oracle", "laer_pq_only", "laer_even_only",
            "laer_no_comm_opt", "static_ep",
        ]

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_system("laer")
            def _factory(ctx):  # pragma: no cover - never invoked
                raise AssertionError

    def test_variant_of_unknown_base_rejected(self):
        with pytest.raises(ValueError, match="unknown system"):
            register_system_variant("x", "no_such_base")

    def test_variant_with_unknown_params_rejected(self):
        with pytest.raises(ValueError, match="does not accept parameter"):
            register_system_variant("laer_typo", "laer", comm_op=False)
        assert "laer_typo" not in available_systems()

    def test_unknown_override_rejected_at_build(self, small_topology,
                                                mixtral_e8k2):
        with pytest.raises(ValueError, match="does not accept parameter"):
            make_system("laer", mixtral_e8k2, small_topology, 2048, bogus=1)

    def test_user_registered_system_usable_from_spec(self, small_topology,
                                                     mixtral_e8k2):
        @register_system("custom_ep", description="registry test system")
        def _build(ctx):
            return ctx.build(StaticEPPolicy(*ctx.policy_args()),
                             paradigm="fsdp_ep")

        try:
            built = make_system("custom_ep", mixtral_e8k2, small_topology, 2048)
            assert built.name == "custom_ep"
            assert built.paradigm == "fsdp_ep"
            spec = small_spec(systems=("custom_ep",), reference="custom_ep")
            result = ExperimentRunner().run(spec)
            assert result.systems["custom_ep"].throughput > 0
        finally:
            unregister_system("custom_ep")
        with pytest.raises(ValueError, match="unknown system"):
            make_system("custom_ep", mixtral_e8k2, small_topology, 2048)

    def test_registered_variant_matches_option_override(self, small_topology,
                                                        mixtral_e8k2):
        variant = make_system("laer_no_comm_opt", mixtral_e8k2,
                              small_topology, 2048)
        override = make_system("laer", mixtral_e8k2, small_topology, 2048,
                               comm_opt=False)
        assert (variant.simulator.schedule.relaxed_prefetch
                == override.simulator.schedule.relaxed_prefetch is False)


class TestRunner:
    def test_throughputs_match_direct_compare_systems(self):
        spec = small_spec()
        result = ExperimentRunner().run(spec)

        topology = spec.cluster.to_topology()
        config = spec.workload.model_config()
        trace = spec.workload.make_trace(topology.num_devices)
        systems = [make_system(name, config, topology,
                               spec.workload.tokens_per_device)
                   for name in ("fsdp_ep", "laer")]
        direct = compare_systems(systems, trace, warmup=spec.workload.warmup)

        for name in ("fsdp_ep", "laer"):
            assert result.systems[name].throughput == direct[name].throughput

    def test_result_fields_and_speedups(self):
        result = run_experiment(small_spec())
        laer = result.systems["laer"]
        assert laer.speedup_vs_reference == pytest.approx(
            result.speedup("laer", "fsdp_ep"))
        assert laer.mean_iteration_s > 0
        assert len(laer.per_layer_relative_max_tokens) == 2
        assert 0.0 <= laer.all_to_all_fraction() <= 1.0
        assert sum(laer.breakdown_fractions().values()) == pytest.approx(
            1.0, abs=0.05)

    def test_result_json_round_trip(self, tmp_path):
        result = run_experiment(small_spec())
        path = result.save(tmp_path / "result.json")
        restored = ExperimentResult.load(path)
        assert restored.spec == result.spec
        assert restored.reference == result.reference
        assert restored.throughputs() == result.throughputs()
        assert (restored.systems["laer"].breakdown_s
                == result.systems["laer"].breakdown_s)
        assert restored.execution_mode == result.execution_mode

    def test_execution_mode_recorded(self):
        sequential = run_experiment(small_spec(), parallel=False)
        assert sequential.execution_mode == "sequential"
        requested = run_experiment(small_spec(), parallel=True)
        # Parallel may be demoted on small hosts/comparisons, but the
        # decision is always recorded.
        assert requested.execution_mode in ("parallel", "sequential-auto",
                                            "sequential-fallback")
        # Results from pre-mode JSON files load with an empty mode.
        data = sequential.to_dict()
        del data["execution_mode"]
        assert ExperimentResult.from_dict(data).execution_mode == ""

    def test_reference_substitution_recorded(self):
        result = run_experiment(small_spec(reference="megatron"))
        assert result.requested_reference == "megatron"
        assert result.reference == "fsdp_ep"
        assert result.reference_substituted

    def test_labelled_options_create_distinct_systems(self):
        spec = small_spec(systems=(
            SystemSpec("laer"),
            SystemSpec("laer", label="laer_raw", options={"comm_opt": False}),
        ), reference="laer")
        result = run_experiment(spec)
        assert set(result.systems) == {"laer", "laer_raw"}
        assert (result.systems["laer"].throughput
                > result.systems["laer_raw"].throughput)

    def test_parallel_and_sequential_runners_agree(self):
        spec = small_spec(systems=("megatron", "fsdp_ep", "flexmoe", "laer"))
        parallel = ExperimentRunner(parallel=True).run(spec)
        sequential = ExperimentRunner(parallel=False).run(spec)
        assert parallel.throughputs() == sequential.throughputs()
        for key in spec.system_keys:
            assert (parallel.systems[key].breakdown_s
                    == sequential.systems[key].breakdown_s)
            assert (parallel.systems[key].per_layer_relative_max_tokens
                    == sequential.systems[key].per_layer_relative_max_tokens)

    def test_overflow_penalty_slows_bursty_churn(self):
        """The capacity-overflow regression test: a bursty-churn workload
        whose hotspots exceed the per-device token budget must get slower
        when the penalty is on, and stay bit-identical when it is off."""
        def bursty(**overrides):
            return small_spec(
                workload=WorkloadSpec(
                    tokens_per_device=1024, layers=1, iterations=4, warmup=1,
                    seed=7, scenario="bursty-churn", params={"period": 4}),
                systems=("fsdp_ep",), reference="fsdp_ep", **overrides)

        baseline = ExperimentRunner(parallel=False).run(bursty())
        off = ExperimentRunner(parallel=False).run(
            bursty(overflow_penalty=0.0, token_capacity=1024))
        charged = ExperimentRunner(parallel=False).run(
            bursty(overflow_penalty=1.0, token_capacity=1024))
        # Off by default: a zero penalty changes nothing, and no overflow
        # bucket appears in the breakdown.
        assert off.throughputs() == baseline.throughputs()
        assert "overflow" not in baseline.systems["fsdp_ep"].breakdown_s
        # Charged: the bursty hotspots overflow the 1024-token budget.
        assert (charged.systems["fsdp_ep"].mean_iteration_s
                > baseline.systems["fsdp_ep"].mean_iteration_s)
        assert charged.systems["fsdp_ep"].breakdown_s["overflow"] > 0.0
        # The overflow result serializes and round-trips like any other.
        assert ExperimentResult.from_dict(charged.to_dict()).to_dict() \
            == charged.to_dict()

    def test_runner_executes_non_default_scenario(self):
        spec = small_spec(workload=WorkloadSpec(
            tokens_per_device=2048, layers=2, iterations=4, warmup=1, seed=7,
            scenario="multi-tenant-mix", params={"tenants": 2}))
        result = run_experiment(spec)
        drifting = run_experiment(small_spec(workload=WorkloadSpec(
            tokens_per_device=2048, layers=2, iterations=4, warmup=1,
            seed=7)))
        assert result.systems["laer"].throughput > 0
        # A different scenario genuinely changes the simulated workload.
        assert (result.systems["laer"].throughput
                != drifting.systems["laer"].throughput)

    def test_planner_study_aggregates_all_layers(self):
        spec = small_spec()
        stats = run_planner_study(spec)
        # Warmup iterations are replayed but not reported, matching the runner.
        assert len(stats) == spec.workload.iterations
        assert stats[0].iteration == spec.workload.warmup
        # Past warmup the planner beats (or matches) static EP.
        assert stats[-1].planned_rel_max_tokens <= stats[-1].static_rel_max_tokens
        assert stats[-1].planned_ms > 0


class TestResultRoundTripAudit:
    """Store round-trips must be bit-exact (regression for lossy fields)."""

    def test_to_dict_is_plain_json_data(self):
        result = run_experiment(small_spec(), parallel=False)

        def walk(obj):
            if isinstance(obj, dict):
                for key, value in obj.items():
                    assert type(key) is str
                    walk(value)
            elif isinstance(obj, list):
                for value in obj:
                    walk(value)
            else:
                # Builtin types only: numpy scalars (float64 etc.) would
                # serialize fine but break in-memory equality with the
                # deserialized result.
                assert type(obj) in (str, int, float, bool, type(None)), \
                    f"non-plain value {obj!r} of type {type(obj)}"

        walk(result.to_dict())

    def test_json_round_trip_is_bit_exact(self):
        result = run_experiment(small_spec(), parallel=False)
        text = result.to_json()
        restored = ExperimentResult.from_json(text)
        assert restored.to_dict() == result.to_dict()
        assert restored.to_json() == text
        assert restored.spec == result.spec
        assert restored.execution_mode == result.execution_mode

    def test_null_execution_mode_loads_as_default(self):
        result = run_experiment(small_spec(), parallel=False)
        data = result.to_dict()
        # Hand-edited / legacy files may carry an explicit null.
        data["execution_mode"] = None
        assert ExperimentResult.from_dict(data).execution_mode == ""
