"""Cross-process fork() determinism audit of the scenario registry.

Fleet workers and parallel runners ship ``TraceSource.fork()`` results to
other processes and expect them to replay the exact trace the parent would
have produced.  This regression matrix covers every registered runnable
scenario plus ``compose`` with each registered wrapper: a forked source
iterated in a child process must yield frames bit-identical to the parent's.
"""

import concurrent.futures

import numpy as np
import pytest

from repro.workloads.scenarios import (
    ScenarioContext,
    available_scenario_wrappers,
    default_runnable_scenarios,
    make_scenario,
)

CTX = ScenarioContext(num_devices=4, num_experts=8, num_layers=2,
                      tokens_per_device=512, top_k=2, iterations=6, seed=5)


def collect_frames(source):
    return [np.array(frame, copy=True) for frame in source.iter_iterations()]


def scenario_matrix():
    cases = [(name, {}) for name in default_runnable_scenarios()]
    for wrapper in available_scenario_wrappers():
        cases.append(("compose", {"base": "drifting", "wrappers": [wrapper]}))
    return cases


def case_id(case):
    name, params = case
    wrappers = params.get("wrappers")
    return f"{name}+{wrappers[0]}" if wrappers else name


@pytest.mark.parametrize("case", scenario_matrix(), ids=case_id)
class TestForkDeterminism:
    def test_fork_is_bit_identical_across_processes(self, case):
        name, params = case
        source = make_scenario(name, CTX, **params)
        local = collect_frames(source.fork())
        with concurrent.futures.ProcessPoolExecutor(max_workers=1) as pool:
            remote = pool.submit(collect_frames, source.fork()).result()
        assert len(local) == len(remote) == CTX.iterations
        for ours, theirs in zip(local, remote):
            assert ours.dtype == theirs.dtype
            assert ours.shape == theirs.shape
            assert np.array_equal(ours, theirs)

    def test_fork_does_not_perturb_the_parent(self, case):
        name, params = case
        source = make_scenario(name, CTX, **params)
        before = collect_frames(source)
        collect_frames(source.fork())  # consuming a fork is side-effect free
        after = collect_frames(source)
        for ours, theirs in zip(before, after):
            assert np.array_equal(ours, theirs)
