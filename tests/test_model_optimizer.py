"""Tests for the optimizers and gradient clipping."""

import numpy as np
import pytest

from repro.model.layers import Linear
from repro.model.optimizer import Adam, SGD, clip_gradients


def quadratic_problem(seed=0):
    """A tiny least-squares problem: fit y = x @ W_true."""
    rng = np.random.default_rng(seed)
    layer = Linear(4, 3, rng=rng)
    w_true = rng.normal(size=(4, 3))
    x = rng.normal(size=(64, 4))
    y = x @ w_true
    return layer, x, y


def loss_and_grad(layer, x, y):
    out, cache = layer.forward(x)
    diff = out - y
    loss = float(np.mean(diff ** 2))
    layer.zero_grad()
    layer.backward(2 * diff / diff.size, cache)
    return loss


class TestSGD:
    def test_reduces_loss(self):
        layer, x, y = quadratic_problem()
        opt = SGD(layer, lr=0.5)
        first = loss_and_grad(layer, x, y)
        for _ in range(50):
            loss_and_grad(layer, x, y)
            opt.step()
        assert loss_and_grad(layer, x, y) < 0.1 * first

    def test_momentum_converges(self):
        layer, x, y = quadratic_problem(seed=1)
        opt = SGD(layer, lr=0.2, momentum=0.9)
        first = loss_and_grad(layer, x, y)
        for _ in range(50):
            loss_and_grad(layer, x, y)
            opt.step()
        assert loss_and_grad(layer, x, y) < first

    def test_validation(self):
        layer, _, _ = quadratic_problem()
        with pytest.raises(ValueError):
            SGD(layer, lr=0.0)
        with pytest.raises(ValueError):
            SGD(layer, lr=0.1, momentum=1.0)


class TestAdam:
    def test_reduces_loss(self):
        layer, x, y = quadratic_problem(seed=2)
        opt = Adam(layer, lr=0.05)
        first = loss_and_grad(layer, x, y)
        for _ in range(100):
            loss_and_grad(layer, x, y)
            opt.step()
        assert loss_and_grad(layer, x, y) < 0.1 * first

    def test_weight_decay_shrinks_weights(self):
        layer, x, y = quadratic_problem(seed=3)
        heavy = Adam(layer, lr=0.01, weight_decay=0.5)
        norm_before = np.linalg.norm(layer.weight.value)
        for _ in range(20):
            layer.zero_grad()  # pure decay, no data gradient
            heavy.step()
        assert np.linalg.norm(layer.weight.value) < norm_before

    def test_state_tracks_parameters(self):
        layer, x, y = quadratic_problem(seed=4)
        opt = Adam(layer, lr=0.01)
        loss_and_grad(layer, x, y)
        opt.step()
        state = opt.optimizer_state()
        assert set(state) == {name for name, _ in layer.named_parameters()}
        assert opt.state_size_bytes() == 2 * layer.num_parameters() * 4

    def test_validation(self):
        layer, _, _ = quadratic_problem()
        with pytest.raises(ValueError):
            Adam(layer, lr=-1.0)
        with pytest.raises(ValueError):
            Adam(layer, betas=(1.0, 0.9))
        with pytest.raises(ValueError):
            Adam(layer, weight_decay=-0.1)

    def test_zero_grad(self):
        layer, x, y = quadratic_problem(seed=5)
        opt = Adam(layer)
        loss_and_grad(layer, x, y)
        opt.zero_grad()
        assert all(np.all(p.grad == 0) for p in layer.parameters())


class TestClipGradients:
    def test_clips_to_max_norm(self):
        layer, x, y = quadratic_problem(seed=6)
        loss_and_grad(layer, x, y)
        norm_before = clip_gradients(layer, max_norm=1e-3)
        total = sum(float(np.sum(p.grad ** 2)) for p in layer.parameters())
        assert np.sqrt(total) == pytest.approx(1e-3, rel=1e-6)
        assert norm_before > 1e-3

    def test_no_clip_when_below(self):
        layer, x, y = quadratic_problem(seed=7)
        loss_and_grad(layer, x, y)
        grads_before = [p.grad.copy() for p in layer.parameters()]
        clip_gradients(layer, max_norm=1e9)
        for before, param in zip(grads_before, layer.parameters()):
            assert np.array_equal(before, param.grad)

    def test_invalid_norm(self):
        layer, _, _ = quadratic_problem()
        with pytest.raises(ValueError):
            clip_gradients(layer, 0.0)
