"""Tests comparing the heuristic layout tuner against exhaustive search."""

import numpy as np
import pytest

from repro.cluster.topology import ClusterTopology
from repro.core.cost_model import MoECostModel
from repro.core.layout_tuner import ExpertLayoutTuner, TunerConfig
from repro.core.reference_solver import enumerate_layouts, solve_reference
from repro.workloads.model_configs import get_model_config


@pytest.fixture
def tiny_topology():
    return ClusterTopology(num_nodes=1, devices_per_node=3)


@pytest.fixture
def cost_model(tiny_topology):
    return MoECostModel.from_model_config(
        get_model_config("mixtral-8x7b-e8k2"), tiny_topology)


class TestEnumerateLayouts:
    def test_count_small_instance(self):
        # 2 devices, 2 experts, capacity 1: each device picks one expert, the
        # layouts covering both experts are (0,1) and (1,0).
        layouts = list(enumerate_layouts(2, 2, 1))
        assert len(layouts) == 2

    def test_all_layouts_complete_and_within_capacity(self):
        for layout in enumerate_layouts(3, 3, 2):
            layout.validate()
            assert np.all(layout.assignment.sum(axis=1) == 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            list(enumerate_layouts(0, 2, 1))


class TestReferenceSolution:
    def test_reference_finds_balanced_layout(self, tiny_topology, cost_model):
        routing = np.array([
            [90, 5, 5],
            [80, 10, 10],
            [85, 5, 10],
        ], dtype=np.int64)
        solution = solve_reference(routing, tiny_topology, cost_model, capacity=2)
        # The overloaded expert 0 must be replicated in the optimum.
        assert solution.layout.replicas_per_expert()[0] >= 2
        assert solution.layouts_evaluated > 10

    def test_heuristic_close_to_optimal(self, tiny_topology, cost_model):
        """Algorithm 2 should land within 15% of the exhaustive optimum."""
        rng = np.random.default_rng(3)
        for _ in range(3):
            routing = rng.integers(0, 200, size=(3, 3)).astype(np.int64)
            reference = solve_reference(routing, tiny_topology, cost_model,
                                        capacity=2)
            tuner = ExpertLayoutTuner(tiny_topology, cost_model, capacity=2,
                                      config=TunerConfig(num_candidates=2))
            heuristic = tuner.solve(routing)
            assert heuristic.cost.total <= reference.cost.total * 1.15 + 1e-12

    def test_reference_never_above_static_heuristic(self, tiny_topology,
                                                    cost_model):
        rng = np.random.default_rng(5)
        routing = rng.integers(0, 100, size=(3, 3)).astype(np.int64)
        reference = solve_reference(routing, tiny_topology, cost_model, capacity=2)
        tuner = ExpertLayoutTuner(tiny_topology, cost_model, capacity=2)
        heuristic = tuner.solve(routing)
        assert reference.cost.total <= heuristic.cost.total + 1e-12

    def test_layout_cap_enforced(self, tiny_topology, cost_model):
        routing = np.ones((3, 3), dtype=np.int64)
        with pytest.raises(RuntimeError):
            solve_reference(routing, tiny_topology, cost_model, capacity=2,
                            max_layouts=3)

    def test_topology_mismatch_rejected(self, cost_model):
        other = ClusterTopology(num_nodes=1, devices_per_node=2)
        routing = np.ones((3, 3), dtype=np.int64)
        with pytest.raises(ValueError):
            solve_reference(routing, other, cost_model, capacity=2)
