"""Tests for the explicit Fig. 5 timeline builder."""

import pytest

from repro.core.comm_schedule import CommScheduleConfig, LayerTimings, schedule_layer
from repro.sim.timeline import build_forward_timeline, format_timeline


def timings(attention=2.0, expert=6.0, a2a=1.0, prefetch=3.0):
    return LayerTimings(attention_compute=attention, expert_compute=expert,
                        token_a2a=a2a, expert_prefetch=prefetch)


class TestForwardTimeline:
    def test_critical_path_without_prefetch(self):
        t = LayerTimings(attention_compute=2.0, expert_compute=6.0,
                         token_a2a=1.0, expert_prefetch=0.0)
        timeline = build_forward_timeline(t, CommScheduleConfig.all_enabled())
        assert timeline.duration == pytest.approx(2.0 + 1.0 + 6.0 + 1.0)

    def test_relaxed_prefetch_hidden_under_expert_compute(self):
        timeline = build_forward_timeline(timings(), CommScheduleConfig.all_enabled())
        # Prefetch (3.0) fits entirely under the expert compute (6.0).
        assert timeline.exposed_prefetch == pytest.approx(0.0)
        assert timeline.duration == pytest.approx(2.0 + 1.0 + 6.0 + 1.0)

    def test_default_schedule_serialises_prefetch(self):
        """Without the relaxed constraint a long prefetch delays the experts."""
        relaxed = build_forward_timeline(
            timings(prefetch=5.0), CommScheduleConfig.all_enabled())
        strict = build_forward_timeline(
            timings(prefetch=5.0),
            CommScheduleConfig(relaxed_prefetch=False, schedule_after_a2a=True,
                               delay_grad_sync=True))
        assert strict.duration > relaxed.duration

    def test_contention_slows_dispatch(self):
        clean = build_forward_timeline(timings(), CommScheduleConfig.all_enabled())
        contended = build_forward_timeline(
            timings(),
            CommScheduleConfig(relaxed_prefetch=True, schedule_after_a2a=False,
                               delay_grad_sync=True))
        assert contended.duration >= clean.duration

    def test_timeline_consistent_with_analytic_model(self):
        """The explicit timeline never beats the analytic forward-time model by
        more than the model's contention padding."""
        t = timings()
        config = CommScheduleConfig.all_enabled()
        timeline = build_forward_timeline(t, config)
        analytic = schedule_layer(t, config)
        assert timeline.duration <= analytic.forward_time + 1e-9

    def test_streams_used(self):
        timeline = build_forward_timeline(timings(), CommScheduleConfig.all_enabled())
        streams = {row["stream"] for row in timeline.rows()}
        assert "S1-compute" in streams
        assert "S2-prefetch" in streams
        assert "S3-token-a2a" in streams

    def test_format_timeline(self):
        timeline = build_forward_timeline(timings(), CommScheduleConfig.all_enabled())
        text = format_timeline(timeline, unit="ms")
        assert "expert_compute" in text
        assert "total" in text
        with pytest.raises(KeyError):
            format_timeline(timeline, unit="minutes")
