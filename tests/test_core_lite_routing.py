"""Tests for the lite routing token dispatcher (Algorithm 3)."""

import numpy as np
import pytest

from repro.core.layout import ExpertLayout, static_ep_layout
from repro.core.lite_routing import (
    ep_route,
    global_even_route,
    lite_route,
    lite_route_single_rank,
    _split_evenly,
)


class TestSplitEvenly:
    def test_exact_division(self):
        assert _split_evenly(12, np.array([1, 1, 1])).tolist() == [4, 4, 4]

    def test_remainder_goes_to_largest_fraction(self):
        split = _split_evenly(10, np.array([1, 1, 1]))
        assert split.sum() == 10
        assert sorted(split.tolist()) == [3, 3, 4]

    def test_weighted_split(self):
        split = _split_evenly(9, np.array([2, 1]))
        assert split.tolist() == [6, 3]

    def test_zero_total(self):
        assert _split_evenly(0, np.array([1, 2])).tolist() == [0, 0]

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            _split_evenly(5, np.array([0, 0]))

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            _split_evenly(-1, np.array([1]))


class TestLiteRouting:
    def test_conservation(self, small_topology):
        rng = np.random.default_rng(0)
        routing = rng.integers(0, 100, size=(8, 8)).astype(np.int64)
        layout = static_ep_layout(8, 8, 2)
        plan = lite_route(routing, layout, small_topology)
        assert np.array_equal(plan.sum(axis=2), routing)

    def test_tokens_only_on_hosting_devices(self, small_topology):
        rng = np.random.default_rng(1)
        routing = rng.integers(0, 100, size=(8, 8)).astype(np.int64)
        layout = static_ep_layout(8, 8, 2)
        plan = lite_route(routing, layout, small_topology)
        received = plan.sum(axis=0)  # (E, N)
        hosted = layout.assignment.T > 0
        assert np.all(received[~hosted] == 0)

    def test_prefers_intra_node_replicas(self, small_topology):
        """With replicas on both nodes, a sender only uses its own node's."""
        # Expert 0 has replicas on device 0 (node 0) and device 4 (node 1).
        assignment = np.zeros((8, 4), dtype=np.int64)
        assignment[0, 0] = 1
        assignment[4, 0] = 1
        for expert in range(1, 4):
            assignment[expert, expert] = 1
        layout = ExpertLayout(assignment, capacity=2)
        routing = np.zeros((8, 4), dtype=np.int64)
        routing[1, 0] = 100   # sender on node 0
        routing[5, 0] = 100   # sender on node 1
        plan = lite_route(routing, layout, small_topology)
        assert plan[1, 0, 0] == 100 and plan[1, 0, 4] == 0
        assert plan[5, 0, 4] == 100 and plan[5, 0, 0] == 0

    def test_falls_back_to_global_replicas(self, small_topology):
        """Without an intra-node replica tokens split across global replicas."""
        assignment = np.zeros((8, 2), dtype=np.int64)
        assignment[4, 0] = 1
        assignment[5, 0] = 1
        assignment[0, 1] = 1
        layout = ExpertLayout(assignment, capacity=1)
        routing = np.zeros((8, 2), dtype=np.int64)
        routing[1, 0] = 10  # sender on node 0, replicas only on node 1
        plan = lite_route(routing, layout, small_topology)
        assert plan[1, 0, 4] == 5 and plan[1, 0, 5] == 5

    def test_splits_evenly_among_intra_node_replicas(self, small_topology):
        assignment = np.zeros((8, 2), dtype=np.int64)
        assignment[0, 0] = 1
        assignment[1, 0] = 1
        assignment[2, 0] = 1
        assignment[3, 1] = 1
        layout = ExpertLayout(assignment, capacity=1)
        routing = np.zeros((8, 2), dtype=np.int64)
        routing[0, 0] = 90
        plan = lite_route(routing, layout, small_topology)
        assert plan[0, 0, 0] == 30 and plan[0, 0, 1] == 30 and plan[0, 0, 2] == 30

    def test_missing_replica_raises(self, small_topology):
        layout = ExpertLayout(np.zeros((8, 2), dtype=np.int64), capacity=1)
        routing = np.ones((8, 2), dtype=np.int64)
        with pytest.raises(ValueError):
            lite_route(routing, layout, small_topology)

    def test_shape_validation(self, small_topology):
        layout = static_ep_layout(8, 8, 2)
        with pytest.raises(ValueError):
            lite_route(np.zeros((4, 8), dtype=np.int64), layout, small_topology)
        with pytest.raises(ValueError):
            lite_route_single_rank(np.zeros(4, dtype=np.int64), layout,
                                   small_topology, rank=0)

    def test_negative_counts_rejected(self, small_topology):
        layout = static_ep_layout(8, 8, 2)
        routing = np.zeros(8, dtype=np.int64)
        routing[0] = -1
        with pytest.raises(ValueError):
            lite_route_single_rank(routing, layout, small_topology, rank=0)

    def test_per_rank_matches_full(self, small_topology):
        rng = np.random.default_rng(2)
        routing = rng.integers(0, 50, size=(8, 8)).astype(np.int64)
        layout = static_ep_layout(8, 8, 2)
        plan = lite_route(routing, layout, small_topology)
        for rank in range(8):
            single = lite_route_single_rank(routing[rank], layout,
                                            small_topology, rank)
            assert np.array_equal(single, plan[rank])


class TestAlternativeRouters:
    def test_global_even_route_conserves(self, small_topology):
        rng = np.random.default_rng(3)
        routing = rng.integers(0, 40, size=(8, 8)).astype(np.int64)
        layout = static_ep_layout(8, 8, 2)
        plan = global_even_route(routing, layout)
        assert np.array_equal(plan.sum(axis=2), routing)

    def test_global_even_route_ignores_topology(self, small_topology):
        assignment = np.zeros((8, 1), dtype=np.int64)
        assignment[0, 0] = 1
        assignment[4, 0] = 1
        layout = ExpertLayout(assignment, capacity=1)
        routing = np.zeros((8, 1), dtype=np.int64)
        routing[1, 0] = 10
        plan = global_even_route(routing, layout)
        assert plan[1, 0, 0] == 5 and plan[1, 0, 4] == 5

    def test_ep_route_sends_to_single_owner(self):
        routing = np.full((4, 4), 7, dtype=np.int64)
        layout = static_ep_layout(4, 4, 2)
        plan = ep_route(routing, layout)
        assert np.array_equal(plan.sum(axis=2), routing)
        for expert in range(4):
            owner = layout.devices_hosting(expert)[0]
            assert plan[:, expert, owner].sum() == routing[:, expert].sum()

    def test_ep_route_missing_replica(self):
        layout = ExpertLayout(np.zeros((2, 1), dtype=np.int64), capacity=1)
        with pytest.raises(ValueError):
            ep_route(np.ones((2, 1), dtype=np.int64), layout)


class TestLiteRouteBatch:
    def layouts(self, n=8, num_experts=8, count=4, seed=0):
        from repro.core.relocation import relocate_experts
        from repro.core.replica_allocation import (
            even_replicas,
            perturb_replicas,
        )
        from repro.cluster.topology import ClusterTopology
        topology = ClusterTopology(num_nodes=2, devices_per_node=n // 2)
        rng = np.random.default_rng(seed)
        schemes = [even_replicas(n, num_experts, 2)]
        while len(schemes) < count:
            schemes.append(perturb_replicas(schemes[0], rng, 2))
        loads = rng.integers(1, 100, size=num_experts)
        return topology, [relocate_experts(s, loads, topology, 2)
                          for s in schemes]

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_bit_identical_to_scalar_loop(self, seed):
        from repro.core.lite_routing import lite_route_batch
        topology, layouts = self.layouts(seed=seed)
        rng = np.random.default_rng(seed + 100)
        routing = rng.integers(0, 4096, size=(8, 8)).astype(np.int64)
        batched = lite_route_batch(routing, layouts, topology)
        for index, layout in enumerate(layouts):
            expected = lite_route(routing, layout, topology)
            assert np.array_equal(batched[index], expected), \
                f"candidate {index} diverged"

    def test_single_layout_matches(self):
        from repro.core.lite_routing import lite_route_batch
        topology, layouts = self.layouts(count=1)
        routing = np.full((8, 8), 13, dtype=np.int64)
        batched = lite_route_batch(routing, layouts[:1], topology)
        assert batched.shape == (1, 8, 8, 8)
        assert np.array_equal(batched[0],
                              lite_route(routing, layouts[0], topology))

    def test_conservation_across_the_batch(self):
        from repro.core.lite_routing import lite_route_batch
        topology, layouts = self.layouts(count=6, seed=5)
        rng = np.random.default_rng(9)
        routing = rng.integers(0, 512, size=(8, 8)).astype(np.int64)
        batched = lite_route_batch(routing, layouts, topology)
        for plan in batched:
            assert np.array_equal(plan.sum(axis=2), routing)

    def test_missing_replica_raises(self):
        from repro.core.lite_routing import lite_route_batch
        from repro.cluster.topology import ClusterTopology
        topology = ClusterTopology(num_nodes=1, devices_per_node=2)
        layout = ExpertLayout(np.zeros((2, 1), dtype=np.int64), capacity=1)
        routing = np.ones((2, 1), dtype=np.int64)
        with pytest.raises(ValueError):
            lite_route_batch(routing, [layout], topology)

    def test_empty_layout_list_raises(self):
        from repro.core.lite_routing import lite_route_batch
        from repro.cluster.topology import ClusterTopology
        topology = ClusterTopology(num_nodes=1, devices_per_node=2)
        with pytest.raises(ValueError):
            lite_route_batch(np.ones((2, 1), dtype=np.int64), [], topology)
