"""Tests for the system specs and the trace-driven run simulator."""

import pytest

from repro.cluster.topology import ClusterTopology
from repro.sim.engine import TrainingRunSimulator, compare_systems
from repro.sim.systems import available_systems, choose_megatron_tp, make_system
from repro.workloads.model_configs import get_model_config
from repro.workloads.routing_traces import RoutingTraceConfig, SyntheticRoutingTraceGenerator

CONFIG = get_model_config("mixtral-8x7b-e8k2")


@pytest.fixture(scope="module")
def topology():
    return ClusterTopology(num_nodes=2, devices_per_node=4)


@pytest.fixture(scope="module")
def trace(topology):
    generator = SyntheticRoutingTraceGenerator(RoutingTraceConfig(
        num_devices=topology.num_devices, num_experts=8, num_layers=2,
        tokens_per_device=8192, top_k=2, skew=0.4, seed=21))
    return generator.generate(8)


class TestSystemFactory:
    def test_all_listed_systems_buildable(self, topology):
        for name in available_systems():
            system = make_system(name, CONFIG, topology, tokens_per_device=8192)
            assert system.name == name
            assert system.simulator.tokens_per_device == 8192

    def test_unknown_system_rejected(self, topology):
        with pytest.raises(ValueError):
            make_system("deepspeed", CONFIG, topology, 8192)

    def test_megatron_uses_tensor_parallelism(self, topology):
        system = make_system("megatron", CONFIG, topology, 8192)
        assert system.paradigm == "megatron"
        assert system.tp_size >= 2

    def test_laer_uses_fsep(self, topology):
        system = make_system("laer", CONFIG, topology, 8192)
        assert system.paradigm == "fsep"
        assert system.policy.name == "laer-moe"

    def test_choose_megatron_tp_larger_for_bigger_models(self, paper_topology):
        e8k2 = choose_megatron_tp(get_model_config("mixtral-8x7b-e8k2"),
                                  paper_topology, 16384)
        e16k4 = choose_megatron_tp(get_model_config("mixtral-8x7b-e16k4"),
                                   paper_topology, 16384)
        assert e8k2 >= e16k4

    def test_ablation_variants_differ_in_config(self, topology):
        pq = make_system("laer_pq_only", CONFIG, topology, 8192)
        even = make_system("laer_even_only", CONFIG, topology, 8192)
        no_opt = make_system("laer_no_comm_opt", CONFIG, topology, 8192)
        assert pq.policy.planner.tuner.config.use_even is False
        assert even.policy.planner.tuner.config.use_priority_queue is False
        assert no_opt.simulator.schedule.relaxed_prefetch is False


class TestRunSimulator:
    def test_run_produces_iterations(self, topology, trace):
        system = make_system("fsdp_ep", CONFIG, topology, 8192)
        result = TrainingRunSimulator(system).run(trace, warmup=2)
        assert len(result.iterations) == 6
        assert result.mean_iteration_time > 0
        assert result.throughput > 0

    def test_warmup_validation(self, topology, trace):
        system = make_system("fsdp_ep", CONFIG, topology, 8192)
        with pytest.raises(ValueError):
            TrainingRunSimulator(system).run(trace, warmup=100)

    def test_max_iterations_cap(self, topology, trace):
        system = make_system("fsdp_ep", CONFIG, topology, 8192)
        result = TrainingRunSimulator(system).run(trace, max_iterations=3, warmup=1)
        assert len(result.iterations) == 3

    def test_breakdown_fractions_sum_to_about_one(self, topology, trace):
        system = make_system("fsdp_ep", CONFIG, topology, 8192)
        result = TrainingRunSimulator(system).run(trace, warmup=1)
        assert sum(result.breakdown_fractions().values()) == pytest.approx(1.0,
                                                                           abs=0.05)


class TestPaperClaims:
    """End-to-end claims of the paper, checked on a small cluster."""

    @pytest.fixture(scope="class")
    def results(self, topology, trace):
        systems = [make_system(name, CONFIG, topology, 8192)
                   for name in ("megatron", "fsdp_ep", "flexmoe", "laer", "oracle")]
        return compare_systems(systems, trace, warmup=2)

    def test_laer_faster_than_all_baselines(self, results):
        laer = results["laer"].throughput
        assert laer > results["megatron"].throughput
        assert laer > results["fsdp_ep"].throughput
        assert laer > results["flexmoe"].throughput

    def test_laer_speedup_in_paper_range(self, results):
        """Fig. 8: up to 1.69x over Megatron, 1.50x over FSDP+EP."""
        speedup_megatron = results["laer"].speedup_over(results["megatron"])
        speedup_fsdp = results["laer"].speedup_over(results["fsdp_ep"])
        assert 1.1 < speedup_megatron < 2.2
        assert 1.1 < speedup_fsdp < 2.0

    def test_laer_close_to_oracle(self, results):
        assert results["oracle"].speedup_over(results["laer"]) < 1.15

    def test_all_to_all_fraction_drops(self, results):
        """Fig. 1(b) / Fig. 10(a): imbalance inflates the A2A share above 40%,
        LAER brings it below ~20-25%."""
        assert results["fsdp_ep"].all_to_all_fraction() > 0.30
        assert results["laer"].all_to_all_fraction() < 0.25

    def test_relative_max_tokens_near_one_for_laer(self, results):
        """Fig. 10(b): LAER stays close to the perfect-balance line."""
        assert results["laer"].mean_relative_max_tokens() < 1.5
        assert (results["fsdp_ep"].mean_relative_max_tokens()
                > results["laer"].mean_relative_max_tokens())
