"""Tests for the Sec. 3.1 communication / memory / overlap analysis."""

import pytest

from repro.cluster.device import A100_SPEC
from repro.cluster.topology import DEFAULT_INTER_NODE_BANDWIDTH
from repro.core.comm_analysis import (
    expert_compute_time,
    fsdp_allgather_volume,
    fsep_extra_memory_bytes,
    fsep_to_fsdp_volume_ratio,
    fsep_unshard_volume,
    overlap_is_feasible,
    overlap_token_threshold,
    prefetch_bytes_per_device,
    prefetch_time,
)
from repro.workloads.model_configs import get_model_config


@pytest.fixture
def config():
    return get_model_config("mixtral-8x7b-e8k2")


class TestVolumes:
    def test_fsep_volume_formula(self):
        # C=2, N=4, Psi=100 -> 2 * 3/4 * 100 = 150.
        assert fsep_unshard_volume(2, 4, 100.0) == pytest.approx(150.0)

    def test_fsdp_volume_formula(self):
        # C=2, P_fsdp=4, Psi=100 -> 3/4 * 2 * 100 = 150.
        assert fsdp_allgather_volume(2, 4, 100.0) == pytest.approx(150.0)

    def test_paper_ratio_example(self):
        """P_fsep=32, P_fsdp=8 gives a ratio of about 1.1 (Sec. 3.1)."""
        assert fsep_to_fsdp_volume_ratio(32, 8) == pytest.approx(1.107, abs=0.01)

    def test_ratio_approaches_one_with_scale(self):
        small = fsep_to_fsdp_volume_ratio(16, 4)
        large = fsep_to_fsdp_volume_ratio(1024, 256)
        assert large < small
        assert large == pytest.approx(1.0, abs=0.01)

    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            fsep_to_fsdp_volume_ratio(1, 8)

    def test_volume_validation(self):
        with pytest.raises(ValueError):
            fsep_unshard_volume(0, 4, 10.0)
        with pytest.raises(ValueError):
            fsdp_allgather_volume(2, 0, 10.0)


class TestMemory:
    def test_extra_memory_is_2c_psi(self, config):
        expected = 2 * config.expert_capacity * config.expert_params_per_layer * 2
        assert fsep_extra_memory_bytes(config) == pytest.approx(expected)

    def test_extra_memory_small_relative_to_model(self, config):
        """The paper: the extra memory is negligible relative to the model."""
        extra = fsep_extra_memory_bytes(config)
        full_model = config.total_params * 2
        assert extra / full_model < 0.02

    def test_capacity_override(self, config):
        assert fsep_extra_memory_bytes(config, capacity=4) == pytest.approx(
            2 * fsep_extra_memory_bytes(config, capacity=2))


class TestOverlap:
    def test_prefetch_bytes_formula(self, config):
        expected = 3 * 2 * 4096 * 14336 * 2
        assert prefetch_bytes_per_device(config) == pytest.approx(expected)

    def test_threshold_close_to_paper_value(self, config):
        """Sec. 3.1: the overlap condition is satisfied around S >= 17K.

        The 800 Gbps InfiniBand bandwidth is per node and shared by the 8
        GPUs, so the per-GPU share during a cluster-wide All-to-All is an
        eighth of it.
        """
        per_gpu_bandwidth = DEFAULT_INTER_NODE_BANDWIDTH / 8
        threshold = overlap_token_threshold(config, A100_SPEC, per_gpu_bandwidth)
        assert 6_000 < threshold < 30_000

    def test_feasibility_monotone_in_tokens(self, config):
        bandwidth = DEFAULT_INTER_NODE_BANDWIDTH
        threshold = overlap_token_threshold(config, A100_SPEC, bandwidth)
        assert overlap_is_feasible(config, A100_SPEC, bandwidth, threshold * 2)
        assert not overlap_is_feasible(config, A100_SPEC, bandwidth, threshold / 2)

    def test_faster_network_lowers_threshold(self, config):
        slow = overlap_token_threshold(config, A100_SPEC, 50e9)
        fast = overlap_token_threshold(config, A100_SPEC, 300e9)
        assert fast < slow

    def test_prefetch_and_compute_times_positive(self, config):
        assert prefetch_time(config, 100e9) > 0
        assert expert_compute_time(config, 1000, A100_SPEC) > 0
        assert expert_compute_time(config, 0, A100_SPEC) == 0.0

    def test_validation(self, config):
        with pytest.raises(ValueError):
            prefetch_time(config, 0.0)
        with pytest.raises(ValueError):
            expert_compute_time(config, -1, A100_SPEC)
