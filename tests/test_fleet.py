"""Tests for the fleet subsystem (work queue, workers, coordinator).

Includes the multi-process stress test the store's lock-safe index protocol
exists for: two worker processes drain a >= 8-cell study into one shared
store, and afterwards every cell must be persisted exactly once with the
index layer fully consistent (``rebuild_index`` is a byte-level no-op).
"""

import json
import os
import threading
import time

import pytest

from repro.api import ClusterSpec, ExperimentSpec, WorkloadSpec
from repro.fleet import (
    FleetWorker,
    LeaseLost,
    QueuedCell,
    WorkQueue,
    cell_key,
    launch_fleet,
)
from repro.store import ResultStore, run_id_for
from repro.study import (
    StudyAxes,
    StudyCellError,
    StudySpec,
    StudyStoreError,
    study_run_tags,
)


def base_spec(**overrides) -> ExperimentSpec:
    defaults = dict(
        name="base",
        cluster=ClusterSpec(num_nodes=1, devices_per_node=4),
        workload=WorkloadSpec(tokens_per_device=1024, layers=1,
                              iterations=2, warmup=1, seed=3),
        systems=("fsdp_ep", "laer"),
        reference="fsdp_ep",
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def tiny_study(name="tiny-fleet", **axes) -> StudySpec:
    axes = axes or {"cluster_sizes": (1, 2)}
    return StudySpec(name=name, base=base_spec(), axes=StudyAxes(**axes))


def eight_cell_study() -> StudySpec:
    """systems x cluster-sizes grid with 8 one-system cells (fast to run)."""
    return StudySpec(
        name="stress",
        base=base_spec(),
        axes=StudyAxes(
            systems=(("fsdp_ep",), ("laer",), ("fastermoe",), ("smartmoe",)),
            cluster_sizes=(1, 2),
        ))


def queued(study: StudySpec, tags=()) -> list:
    return [QueuedCell(key=cell_key(cell.cell_id), cell_id=cell.cell_id,
                       spec=cell.spec, tags=tuple(tags))
            for cell in study.expand()]


class TestCellKey:
    def test_filesystem_safe_and_collision_resistant(self):
        key = cell_key("laer/bursty-churn/period=20/n2x8")
        assert "/" not in key and "=" not in key and " " not in key
        assert cell_key("a/b") != cell_key("a-b")  # slugs collide, hashes not
        assert cell_key("x") == cell_key("x")


class TestWorkQueue:
    def test_populate_is_idempotent(self, tmp_path):
        queue = WorkQueue(tmp_path)
        cells = queued(tiny_study())
        assert queue.populate(cells) == 2
        assert queue.populate(cells) == 0
        assert [cell.cell_id for cell in queue.cells()] == \
            sorted(cell.cell_id for cell in cells)

    def test_claim_is_exclusive(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.populate(queued(tiny_study()))
        first = queue.claim("w1")
        second = queue.claim("w2")
        assert first is not None and second is not None
        assert first.key != second.key
        assert queue.claim("w3") is None  # both cells leased
        assert queue.outstanding()       # ...but not finished

    def test_complete_releases_and_finishes(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.populate(queued(tiny_study()))
        cell = queue.claim("w1")
        queue.complete(cell.key, "w1", run_id="r1", seconds=0.5)
        assert cell.key not in queue.outstanding()
        record = queue.done_records()[cell.key]
        assert record["worker"] == "w1" and record["run_id"] == "r1"
        # A finished cell is never claimable again.
        other = queue.claim("w2")
        assert other is None or other.key != cell.key

    def test_cell_never_carries_both_outcomes(self, tmp_path):
        """After a reclaim race one execution may fail while the other
        completed; the cell must end with exactly one outcome record."""
        queue = WorkQueue(tmp_path)
        queue.populate(queued(tiny_study()))
        cell = queue.claim("w1")
        # Failure then success (retry by a reclaimer): done supersedes.
        queue.fail(cell.key, "w1", "transient")
        queue.complete(cell.key, "w2", run_id="r1")
        assert cell.key in queue.done_records()
        assert cell.key not in queue.failed_records()
        # Success then failure (stale worker failing late): fail is moot.
        queue.fail(cell.key, "w1", "late transient")
        assert cell.key in queue.done_records()
        assert cell.key not in queue.failed_records()
        status = queue.status()
        assert status.done == 1 and status.failed == 0

    def test_fail_records_kind(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.populate(queued(tiny_study()))
        cell = queue.claim("w1")
        queue.fail(cell.key, "w1", "ValueError: boom", kind="cell")
        assert queue.failed_records()[cell.key]["kind"] == "cell"
        with pytest.raises(ValueError, match="unknown failure kind"):
            queue.fail(cell.key, "w1", "x", kind="bogus")

    def test_populate_rearms_failed_cells(self, tmp_path):
        queue = WorkQueue(tmp_path)
        cells = queued(tiny_study())
        queue.populate(cells)
        cell = queue.claim("w1")
        queue.fail(cell.key, "w1", "boom")
        assert queue.populate(cells) == 0  # cell files still exist
        assert not queue.failed_records()  # but the failure was re-armed
        assert cell.key in queue.outstanding()

    def test_populate_drops_stale_done_records(self, tmp_path):
        """Re-queueing a cell (its run left the store, or run identity
        changed) must drop the old done record, or claim() would skip the
        cell and the stale record would masquerade as a fresh outcome."""
        queue = WorkQueue(tmp_path)
        cells = queued(tiny_study())
        queue.populate(cells)
        cell = queue.claim("w1")
        queue.complete(cell.key, "w1", run_id="old-run")
        queue.populate(cells)  # coordinator says: all pending again
        assert not queue.done_records()
        assert cell.key in queue.outstanding()

    def test_heartbeat_requires_ownership(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.populate(queued(tiny_study()))
        cell = queue.claim("w1")
        before = queue.lease_info(cell.key).heartbeat_at
        time.sleep(0.02)
        queue.heartbeat(cell.key, "w1")
        assert queue.lease_info(cell.key).heartbeat_at >= before
        with pytest.raises(LeaseLost):
            queue.heartbeat(cell.key, "w2")
        # A reclaim between the ownership check and the mtime touch must
        # surface as LeaseLost too, never a raw FileNotFoundError.
        real_utime = os.utime

        def reclaim_then_utime(path, *args, **kwargs):
            queue.lease_path(cell.key).unlink()
            return real_utime(path, *args, **kwargs)

        import unittest.mock
        with unittest.mock.patch.object(os, "utime", reclaim_then_utime):
            with pytest.raises(LeaseLost, match="mid-heartbeat"):
                queue.heartbeat(cell.key, "w1")
        with pytest.raises(LeaseLost):
            queue.heartbeat(cell.key, "w1")

    def test_same_name_other_process_does_not_own_the_lease(self, tmp_path):
        """Two fleets share worker names (worker-1..N): ownership must be
        (name, pid), or a stale worker would heartbeat/release the lease a
        same-named worker of another fleet reclaimed from it."""
        queue = WorkQueue(tmp_path)
        queue.populate(queued(tiny_study()))
        cell = queue.claim("worker-1")
        # Rewrite the lease as if another process's worker-1 now holds it.
        lease = queue.lease_path(cell.key)
        data = json.loads(lease.read_text())
        data["pid"] = data["pid"] + 1
        lease.write_text(json.dumps(data) + "\n")
        with pytest.raises(LeaseLost):
            queue.heartbeat(cell.key, "worker-1")
        queue.release(cell.key, "worker-1")
        assert lease.exists()  # the usurper's live lease was not unlinked

    def test_expired_lease_is_reclaimed(self, tmp_path):
        queue = WorkQueue(tmp_path, lease_timeout=0.5)
        queue.populate(queued(tiny_study()))
        dead = queue.claim("dead-worker")
        # Nobody heart-beats: age the lease past the timeout.
        stale = time.time() - 10.0
        os.utime(queue.lease_path(dead.key), (stale, stale))
        reclaimed = {queue.claim("w2").key, queue.claim("w2").key}
        assert dead.key in reclaimed  # the abandoned cell was taken over
        assert queue.lease_info(dead.key).worker == "w2"

    def test_old_unreadable_lease_is_reclaimed(self, tmp_path):
        """A 0-byte lease (owner crashed between O_EXCL create and payload
        write) must still expire by mtime, or its cell is wedged forever."""
        queue = WorkQueue(tmp_path, lease_timeout=0.5)
        cells = queued(tiny_study())
        queue.populate(cells)
        lease = queue.lease_path(cells[0].key)
        lease.parent.mkdir(parents=True, exist_ok=True)
        lease.write_text("")  # crashed mid-create
        stale = time.time() - 10.0
        os.utime(lease, (stale, stale))
        claimed = {queue.claim("w2").key, queue.claim("w2").key}
        assert claimed == {cell.key for cell in cells}

    def test_fresh_unreadable_lease_is_left_alone(self, tmp_path):
        """A fresh unreadable lease may be a concurrent claimer mid-write:
        it must not be stolen before the timeout."""
        queue = WorkQueue(tmp_path, lease_timeout=60.0)
        cells = queued(tiny_study())
        queue.populate(cells)
        lease = queue.lease_path(cells[0].key)
        lease.parent.mkdir(parents=True, exist_ok=True)
        lease.write_text("")  # just created, payload not yet written
        claimed = queue.claim("w2")
        assert claimed is not None and claimed.key != cells[0].key

    def test_live_lease_is_not_reclaimed(self, tmp_path):
        queue = WorkQueue(tmp_path, lease_timeout=60.0)
        queue.populate(queued(tiny_study()))
        held = queue.claim("w1")
        taken = queue.claim("w2")  # gets the other cell
        assert taken.key != held.key
        assert queue.claim("w3") is None
        assert queue.lease_info(held.key).worker == "w1"

    def test_concurrent_claims_are_unique(self, tmp_path):
        """Many threads racing claim(): every cell claimed exactly once."""
        study = eight_cell_study()
        queue = WorkQueue(tmp_path)
        queue.populate(queued(study))
        claimed, lock = [], threading.Lock()

        def worker(name):
            while True:
                cell = queue.claim(name)
                if cell is None:
                    return
                with lock:
                    claimed.append(cell.key)

        threads = [threading.Thread(target=worker, args=(f"t{i}",))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(claimed) == sorted(
            cell_key(cell.cell_id) for cell in study.expand())
        assert len(set(claimed)) == len(claimed)

    def test_unreadable_cell_file_gets_a_failed_outcome(self, tmp_path):
        """A corrupt cell file must be failed, not skipped: a silent skip
        leaves it outstanding forever and poll-livelocks every worker."""
        study = tiny_study()
        queue = WorkQueue(tmp_path / "queue")
        cells = queued(study)
        queue.populate(cells)
        queue.cell_path(cells[0].key).write_text("{torn")
        store = ResultStore(tmp_path / "store")
        report = FleetWorker(queue, store, worker_id="solo",
                             poll_interval=0.05).run()  # must terminate
        assert len(report.executed) == 1
        record = queue.failed_records()[cells[0].key]
        assert record["kind"] == "cell" and "unreadable" in record["error"]
        assert not queue.outstanding()

    def test_status_counts(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.populate(queued(tiny_study()))
        cell = queue.claim("w1")
        status = queue.status()
        assert (status.total, status.pending, status.leased) == (2, 1, 1)
        assert not status.finished
        queue.complete(cell.key, "w1", "r1")
        other = queue.claim("w1")
        queue.fail(other.key, "w1", "boom")
        status = queue.status()
        assert (status.done, status.failed, status.pending) == (1, 1, 0)
        assert status.finished
        assert status.done_by_worker == {"w1": 1}
        assert status.failed_by_worker == {"w1": 1}


class TestFleetWorker:
    def test_single_worker_drains_the_queue(self, tmp_path):
        study = tiny_study()
        tags = study_run_tags(study)
        queue = WorkQueue(tmp_path / "queue")
        queue.populate(queued(study, tags))
        store = ResultStore(tmp_path / "store")
        report = FleetWorker(queue, store, worker_id="solo").run()
        assert sorted(report.executed) == sorted(
            cell.cell_id for cell in study.expand())
        assert not report.failed
        assert len(store.run_ids()) == 2
        # Stored under the study's full tag set: resume-compatible with
        # StudyRunner lookups.
        for cell in study.expand():
            assert run_id_for(cell.spec, tags) in store

    def test_reclaimed_cell_runs_exactly_once(self, tmp_path):
        """A crashed claimer's cell is re-run once, never duplicated."""
        study = tiny_study()
        queue = WorkQueue(tmp_path / "queue", lease_timeout=0.3)
        queue.populate(queued(study))
        # Simulate a worker that claimed a cell and died silently.
        dead = queue.claim("dead-worker")
        stale = time.time() - 10.0
        os.utime(queue.lease_path(dead.key), (stale, stale))

        store = ResultStore(tmp_path / "store")
        workers = [FleetWorker(queue, store, worker_id=f"w{i}",
                               poll_interval=0.05) for i in range(2)]
        reports = [None, None]
        threads = [threading.Thread(
            target=lambda i=i: reports.__setitem__(i, workers[i].run()))
            for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        executed = [cell for report in reports for cell in report.executed]
        # Every cell exactly once -- the reclaimed one included.
        assert sorted(executed) == sorted(
            cell.cell_id for cell in study.expand())
        assert dead.cell_id in executed
        assert len(store.run_ids()) == 2

    def test_cell_failure_is_recorded_not_fatal(self, tmp_path):
        study = tiny_study()
        cells = queued(study)
        # Poison one cell with an impossible spec change via a bad scenario
        # parameter value that only fails at run time.
        bad = cells[0]
        bad_spec = ExperimentSpec.from_dict({
            **bad.spec.to_dict(),
            "workload": {**bad.spec.workload.to_dict(),
                         "scenario": "trace-replay",
                         "params": {"path": str(tmp_path / "missing.npz")}},
        })
        cells[0] = QueuedCell(key=bad.key, cell_id=bad.cell_id,
                              spec=bad_spec, tags=bad.tags)
        queue = WorkQueue(tmp_path / "queue")
        queue.populate(cells)
        store = ResultStore(tmp_path / "store")
        report = FleetWorker(queue, store, worker_id="solo").run()
        assert report.failed == [bad.cell_id]
        assert len(report.executed) == 1
        record = queue.failed_records()[bad.key]
        assert record["kind"] == "cell"
        assert len(store.run_ids()) == 1


class TestLaunchFleet:
    def test_two_process_stress_shared_store(self, tmp_path):
        """The tentpole guarantee: 2 workers, 8 cells, one store; zero lost
        runs, every cell persisted exactly once, index layer consistent."""
        study = eight_cell_study()
        store = ResultStore(tmp_path / "store")
        report = launch_fleet(study, store, workers=2, lease_timeout=120.0,
                              poll_interval=0.05)
        cells = study.expand()
        assert len(cells) == 8
        # Zero lost runs: every cell executed and persisted exactly once.
        assert [cell.cell_id for cell in report.executed] == \
            [cell.cell_id for cell in cells]
        assert not report.failures
        assert len(store.run_ids()) == 8
        assert len(store.entries()) == 8
        tags = study_run_tags(study)
        for cell in cells:
            assert run_id_for(cell.spec, tags) in store
        # Worker attribution covers exactly the executed cells.
        attributed = [cell_id for cells_ in report.cells_by_worker.values()
                      for cell_id in cells_]
        assert sorted(attributed) == sorted(c.cell_id for c in cells)
        # The coordinator compacted the journal into index.json...
        assert store.journal_path.read_text() == ""
        before = store.index_path.read_bytes()
        # ...and a cold rebuild from the run files is a byte-level no-op.
        assert store.rebuild_index() == 8
        assert store.index_path.read_bytes() == before

    def test_fleet_resume_is_a_no_op(self, tmp_path):
        study = tiny_study()
        store = ResultStore(tmp_path / "store")
        first = launch_fleet(study, store, workers=2, poll_interval=0.05)
        assert len(first.executed) == 2
        second = launch_fleet(study, store, workers=2, poll_interval=0.05)
        assert not second.executed
        assert [cell.cell_id for cell in second.skipped] == \
            [cell.cell_id for cell in study.expand()]
        assert len(store.run_ids()) == 2

    def test_fleet_resumes_past_study_runner_results(self, tmp_path):
        """Fleet and StudyRunner agree on run identity (shared tags)."""
        from repro.study import StudyRunner

        study = tiny_study()
        store = ResultStore(tmp_path / "store")
        StudyRunner(store, parallel=False).run(study)
        report = launch_fleet(study, store, workers=2, poll_interval=0.05)
        assert not report.executed and len(report.skipped) == 2

    def test_new_tags_re_execute_despite_old_done_records(self, tmp_path):
        """Tags are part of run identity: a second invocation under a new
        tag set must genuinely re-run every cell -- the previous
        invocation's queue done-records (keyed by cell id, not by run id)
        must not masquerade as this invocation's outcomes."""
        study = tiny_study()
        store = ResultStore(tmp_path / "store")
        launch_fleet(study, store, workers=1, poll_interval=0.05)
        report = launch_fleet(study, store, workers=1, poll_interval=0.05,
                              tags=("baseline",))
        assert len(report.executed) == 2 and not report.skipped
        # The baseline-tagged runs really exist in the store.
        assert len(store.query(tag="baseline")) == 2
        assert len(store.run_ids()) == 4

    def test_narrower_grid_prunes_stale_cells(self, tmp_path):
        """An interrupted invocation's leftover cells must not be executed
        by a later invocation with a narrower grid (the queue directory is
        keyed by study name and survives invocations)."""
        wide = tiny_study()  # cluster_sizes (1, 2)
        narrow = StudySpec(name=wide.name, base=wide.base,
                           axes=StudyAxes(cluster_sizes=(1,)))
        store = ResultStore(tmp_path / "store")
        # Simulate an interrupted wide run: cells queued, nothing executed.
        from repro.fleet.worker import _queued_cells, default_queue_root

        queue = WorkQueue(default_queue_root(store, wide.name))
        queued, _ = _queued_cells(wide, store, study_run_tags(wide), True,
                                  wide.expand())
        queue.populate(queued)
        assert len(queue.outstanding()) == 2
        # The narrow invocation runs only its own single cell...
        report = launch_fleet(narrow, store, workers=1, poll_interval=0.05)
        assert [cell.cell_id for cell in report.executed] == \
            [cell.cell_id for cell in narrow.expand()]
        assert len(store.run_ids()) == 1
        # ...and the stale wide-grid cell is gone from the queue entirely.
        assert not queue.outstanding()
        assert [cell.cell_id for cell in queue.cells()] == \
            [cell.cell_id for cell in narrow.expand()]

    def test_deleted_run_is_re_executed(self, tmp_path):
        """A run deleted from the store re-queues its cell even though the
        queue still holds the old invocation's done record."""
        study = tiny_study()
        store = ResultStore(tmp_path / "store")
        first = launch_fleet(study, store, workers=1, poll_interval=0.05)
        store.delete(first.executed[0].run_id)
        second = launch_fleet(study, store, workers=1, poll_interval=0.05)
        assert [cell.cell_id for cell in second.executed] == \
            [first.executed[0].cell_id]
        assert len(second.skipped) == 1
        assert len(store.run_ids()) == 2

    def test_failed_cell_raises_cell_error_with_report(self, tmp_path):
        study = StudySpec(
            name="bad", base=base_spec(
                workload=WorkloadSpec(
                    tokens_per_device=1024, layers=1, iterations=2, warmup=1,
                    seed=3, scenario="trace-replay",
                    params={"path": str(tmp_path / "missing.npz")})),
            axes=StudyAxes(cluster_sizes=(1, 2)))
        store = ResultStore(tmp_path / "store")
        with pytest.raises(StudyCellError) as excinfo:
            launch_fleet(study, store, workers=1, poll_interval=0.05)
        report = excinfo.value.report
        assert len(report.failures) == 2
        assert all(f.kind == "cell" for f in report.failures)
        # check=False returns the same report without raising.
        report = launch_fleet(study, store, workers=1, poll_interval=0.05,
                              check=False)
        assert len(report.failures) == 2

    def test_store_failure_raises_store_error(self, tmp_path):
        study = tiny_study()
        store = ResultStore(tmp_path / "store")
        # A file squatting on the runs/ path: every put fails with OSError
        # (works regardless of uid, unlike permission bits).
        store.root.mkdir(parents=True)
        (store.root / "runs").write_text("not a directory")
        with pytest.raises(StudyStoreError):
            launch_fleet(study, store, workers=1, poll_interval=0.05)

    def test_workers_validated(self, tmp_path):
        with pytest.raises(ValueError, match="workers"):
            launch_fleet(tiny_study(), ResultStore(tmp_path), workers=0)

    def test_report_serializes(self, tmp_path):
        study = tiny_study()
        store = ResultStore(tmp_path / "store")
        report = launch_fleet(study, store, workers=1, poll_interval=0.05)
        payload = json.dumps(report.to_dict())
        assert "tiny-fleet" in payload
        assert "worker-1=2" in report.worker_summary()


class TestSupervisedRespawn:
    def test_crashed_worker_is_respawned_and_recorded(self, tmp_path,
                                                      monkeypatch):
        from repro.chaos import CHAOS_PLAN_ENV, FaultPlan, FaultSpec

        plan = FaultPlan(name="kill-w1", faults=(
            FaultSpec(point="worker.pre-run", kind="crash", at=1,
                      scope="worker-1"),))
        monkeypatch.setenv(CHAOS_PLAN_ENV,
                           plan.save(str(tmp_path / "plan.json")))
        store = ResultStore(tmp_path / "store")
        report = launch_fleet(tiny_study(), store, workers=2,
                              lease_timeout=1.0, poll_interval=0.05,
                              queue_root=tmp_path / "queue",
                              respawn_limit=2)
        assert report.respawns.get("worker-1", 0) >= 1
        assert report.failures == []
        assert len(report.executed) == 2
        assert "respawns:" in report.summary()
        assert report.to_dict()["respawns"] == report.respawns

    def test_no_respawns_keeps_summary_format(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        report = launch_fleet(tiny_study(), store, workers=1,
                              poll_interval=0.05)
        assert report.respawns == {}
        assert "respawns:" not in report.summary()
