"""Tests for the classic parallel paradigms (DP / FSDP / EP / TP)."""

import numpy as np
import pytest

from repro.parallel.config import ParallelismConfig
from repro.parallel.ep import ExpertParallelGroups
from repro.parallel.fsdp import FSDPShardedParameters
from repro.parallel.tp import TensorParallelCost
from repro.workloads.model_configs import get_model_config


class TestParallelismConfig:
    def test_megatron_factory(self):
        cfg = ParallelismConfig.megatron(num_devices=32, tp_size=4, ep_size=4)
        cfg.validate(32)
        assert cfg.dp_size == 8
        assert cfg.fsdp_size == 8

    def test_fsdp_ep_factory(self):
        cfg = ParallelismConfig.fsdp_ep(num_devices=32, ep_size=4)
        cfg.validate(32)
        assert cfg.fsdp_size == 8
        assert cfg.dp_size == 32

    def test_fsep_factory(self):
        cfg = ParallelismConfig.fsep(num_devices=32)
        cfg.validate(32)
        assert cfg.fsdp_size == 32

    def test_validate_rejects_mismatch(self):
        cfg = ParallelismConfig(tp_size=2, dp_size=4, ep_size=2, fsdp_size=4)
        with pytest.raises(ValueError):
            cfg.validate(32)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            ParallelismConfig(tp_size=0)
        with pytest.raises(ValueError):
            ParallelismConfig.megatron(num_devices=10, tp_size=4, ep_size=2)


class TestFSDPSharding:
    def test_roundtrip(self):
        flat = np.arange(10, dtype=float)
        sharded = FSDPShardedParameters(flat, group_size=4)
        assert sharded.shard_size == 3  # padded to 12
        assert np.array_equal(sharded.all_gather(), flat)

    def test_shard_access(self):
        sharded = FSDPShardedParameters(np.arange(8, dtype=float), group_size=4)
        assert sharded.shard(2).tolist() == [4.0, 5.0]
        with pytest.raises(ValueError):
            sharded.shard(5)

    def test_reduce_scatter_sums_gradients(self):
        flat = np.zeros(8)
        sharded = FSDPShardedParameters(flat, group_size=2)
        grads = [np.ones(8), 2 * np.ones(8)]
        reduced = sharded.reduce_scatter(grads)
        assert reduced.shape == (2, 4)
        assert np.all(reduced == 3.0)

    def test_reduce_scatter_validation(self):
        sharded = FSDPShardedParameters(np.zeros(8), group_size=2)
        with pytest.raises(ValueError):
            sharded.reduce_scatter([np.zeros(8)])
        with pytest.raises(ValueError):
            sharded.reduce_scatter([np.zeros(7), np.zeros(8)])

    def test_apply_sharded_update(self):
        sharded = FSDPShardedParameters(np.zeros(8), group_size=2)
        sharded.apply_sharded_update(np.ones((2, 4)))
        assert np.all(sharded.all_gather() == 1.0)

    def test_communication_volumes(self):
        sharded = FSDPShardedParameters(np.zeros(16), group_size=4,
                                        bytes_per_element=2)
        expected = 3 / 4 * 16 * 2
        assert sharded.all_gather_bytes_per_rank() == pytest.approx(expected)
        assert sharded.reduce_scatter_bytes_per_rank() == pytest.approx(expected)

    def test_volume_matches_fsep_comparison(self):
        """The FSDP volume formula matches comm_analysis.fsdp_allgather_volume."""
        from repro.core.comm_analysis import fsdp_allgather_volume
        psi = 1000
        sharded = FSDPShardedParameters(np.zeros(2 * psi), group_size=8,
                                        bytes_per_element=2)
        assert sharded.all_gather_bytes_per_rank() == pytest.approx(
            fsdp_allgather_volume(capacity=2, fsdp_size=8,
                                  expert_param_bytes=psi * 2))


class TestExpertParallelGroups:
    def test_group_structure(self, paper_topology):
        groups = ExpertParallelGroups(paper_topology, ep_size=4, num_experts=8)
        assert groups.experts_per_device == 2
        assert groups.fsdp_size == 8
        assert groups.ep_group(0) == [0, 1, 2, 3]
        assert groups.ep_group(5) == [4, 5, 6, 7]

    def test_ownership(self, paper_topology):
        groups = ExpertParallelGroups(paper_topology, ep_size=4, num_experts=8)
        assert groups.experts_of(0) == [0, 1]
        assert groups.experts_of(1) == [2, 3]
        assert groups.owner_of(0, 5) == 2
        assert groups.owner_of(6, 5) == 6

    def test_fsdp_group_spans_ep_groups(self, paper_topology):
        groups = ExpertParallelGroups(paper_topology, ep_size=4, num_experts=8)
        assert groups.fsdp_group(0) == [0, 4, 8, 12, 16, 20, 24, 28]

    def test_ownership_matrix(self, paper_topology):
        groups = ExpertParallelGroups(paper_topology, ep_size=4, num_experts=8)
        matrix = groups.ownership_matrix()
        assert matrix.shape == (32, 8)
        assert np.all(matrix.sum(axis=1) == 2)
        assert np.all(matrix.sum(axis=0) == 8)

    def test_validation(self, paper_topology):
        with pytest.raises(ValueError):
            ExpertParallelGroups(paper_topology, ep_size=5, num_experts=8)
        with pytest.raises(ValueError):
            ExpertParallelGroups(paper_topology, ep_size=4, num_experts=6)
        groups = ExpertParallelGroups(paper_topology, ep_size=4, num_experts=8)
        with pytest.raises(ValueError):
            groups.owner_of(0, 99)


class TestTensorParallelCost:
    def test_no_tp_has_no_allreduce(self, paper_topology):
        config = get_model_config("mixtral-8x7b-e8k2")
        cost = TensorParallelCost(paper_topology, config, tp_size=1)
        assert cost.allreduce_time_per_layer(8192) == 0.0
        assert cost.compute_efficiency() == 1.0

    def test_larger_tp_slower_attention(self, paper_topology):
        config = get_model_config("mixtral-8x7b-e8k2")
        tp1 = TensorParallelCost(paper_topology, config, tp_size=1)
        tp4 = TensorParallelCost(paper_topology, config, tp_size=4)
        tp8 = TensorParallelCost(paper_topology, config, tp_size=8)
        t1 = tp1.attention_forward_time(8192)
        t4 = tp4.attention_forward_time(8192)
        t8 = tp8.attention_forward_time(8192)
        assert t1 < t4 < t8

    def test_efficiency_decreases_with_tp(self, paper_topology):
        config = get_model_config("mixtral-8x7b-e8k2")
        effs = [TensorParallelCost(paper_topology, config, tp).compute_efficiency()
                for tp in (1, 2, 4, 8)]
        assert effs == sorted(effs, reverse=True)

    def test_validation(self, paper_topology):
        config = get_model_config("mixtral-8x7b-e8k2")
        with pytest.raises(ValueError):
            TensorParallelCost(paper_topology, config, tp_size=0)
        cost = TensorParallelCost(paper_topology, config, tp_size=2)
        with pytest.raises(ValueError):
            cost.attention_forward_time(-5)
