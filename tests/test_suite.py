"""Tests for the suite subsystem (spec, characterization, report, search)."""

import json
from pathlib import Path

import pytest

from repro.api.specs import ClusterSpec, ExperimentSpec, WorkloadSpec
from repro.store import ResultStore, run_id_for
from repro.suite import (
    METRIC_KEYS,
    MemberProfile,
    SuiteCharacterization,
    SuiteMember,
    SuiteSpec,
    adversarial_search,
    characterize_member,
    characterize_suite,
    coverage_report,
    default_suite,
    format_suite_report,
    graduate,
    member_rows,
    search_tags,
)

REPO_SUITE = Path(__file__).resolve().parents[1] / "suites" / "default-v1.json"


def tiny_suite(**overrides):
    kwargs = dict(
        name="tiny", version=1, tokens_per_device=512, layers=2,
        iterations=6, warmup=1,
        members=(
            SuiteMember(name="skewed", scenario="steady", seed=3, skew=0.15),
            SuiteMember(name="drifty", scenario="drifting", seed=4),
            SuiteMember(name="bursty", scenario="bursty-churn", seed=5,
                        params={"period": 4, "burst_length": 1}),
        ))
    kwargs.update(overrides)
    return SuiteSpec(**kwargs)


class TestSuiteSpec:
    def test_round_trip(self):
        suite = default_suite()
        clone = SuiteSpec.from_dict(json.loads(suite.to_json()))
        assert clone == suite
        assert clone.suite_id == suite.suite_id

    def test_checked_in_suite_matches_default(self):
        assert SuiteSpec.load(REPO_SUITE) == default_suite()

    def test_suite_id_is_content_hashed(self):
        suite = tiny_suite()
        assert suite.suite_id == tiny_suite().suite_id
        assert suite.suite_id.startswith("tiny-v1-")
        assert suite.suite_id != tiny_suite(tokens_per_device=1024).suite_id

    def test_save_and_load(self, tmp_path):
        suite = tiny_suite()
        path = suite.save(tmp_path / "tiny.json")
        assert SuiteSpec.load(path) == suite

    def test_with_member_bumps_version_without_mutating(self):
        suite = tiny_suite()
        grown = suite.with_member(SuiteMember(name="extra", scenario="steady",
                                              seed=9))
        assert grown.version == suite.version + 1
        assert grown.member_names == suite.member_names + ("extra",)
        assert grown.suite_id != suite.suite_id
        assert suite.version == 1 and len(suite.members) == 3

    def test_duplicate_member_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            tiny_suite(members=(
                SuiteMember(name="twin", scenario="steady"),
                SuiteMember(name="twin", scenario="drifting"),
            ))

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            SuiteMember(name="bad", scenario="no-such-scenario")

    def test_unknown_scenario_param_rejected(self):
        with pytest.raises(ValueError, match="does not accept"):
            SuiteMember(name="bad", scenario="steady", params={"bogus": 1})

    def test_unknown_suite_field_rejected(self):
        data = tiny_suite().to_dict()
        data["frobnicate"] = True
        with pytest.raises(ValueError, match="frobnicate"):
            SuiteSpec.from_dict(data)

    def test_member_workload_pins_seed_and_overrides(self):
        suite = tiny_suite()
        workload = suite.member_workload(suite.member("skewed"))
        assert workload.seed == 3
        assert workload.skew == 0.15
        assert workload.scenario == "steady"
        assert workload.tokens_per_device == 512
        # Members without overrides keep the WorkloadSpec defaults.
        default = suite.member_workload(suite.member("drifty"))
        assert default.skew == WorkloadSpec().skew

    def test_member_experiment_names_suite_version(self):
        suite = tiny_suite()
        spec = suite.member_experiment(suite.member("bursty"),
                                       ClusterSpec(num_nodes=1,
                                                   devices_per_node=8))
        assert spec.name == "suite/tiny-v1/bursty"
        assert spec.workload.params == {"period": 4, "burst_length": 1}


def synthetic_profile(name, values):
    metrics = dict(zip(METRIC_KEYS, values))
    return MemberProfile(name=name, scenario="steady",
                         imbalance_mean=metrics["imbalance_p50"], **metrics)


class TestCharacterization:
    def test_profiles_cover_all_metrics(self):
        suite = tiny_suite()
        ch = characterize_suite(suite, num_devices=4)
        assert ch.suite_id == suite.suite_id
        assert len(ch.profiles) == 3
        for profile in ch.profiles:
            for key in METRIC_KEYS:
                value = getattr(profile, key)
                assert isinstance(value, float)
                assert value == value  # not NaN
            assert profile.imbalance_p50 <= profile.imbalance_p90 \
                <= profile.imbalance_p99

    def test_metrics_separate_the_regimes(self):
        suite = default_suite()
        balanced = characterize_member(suite.member("steady-balanced"),
                                       suite, 8)
        skewed = characterize_member(suite.member("steady-skewed"), suite, 8)
        drifting = characterize_member(suite.member("drifting"), suite, 8)
        assert skewed.imbalance_p50 > balanced.imbalance_p50
        assert skewed.hot_concentration > balanced.hot_concentration
        assert drifting.drift_velocity > balanced.drift_velocity

    def test_characterization_round_trips(self, tmp_path):
        ch = characterize_suite(tiny_suite(), num_devices=4)
        path = ch.save(tmp_path / "ch.json")
        assert SuiteCharacterization.load(path) == ch

    def test_coverage_flags_redundant_pairs(self):
        twin = [1.0, 1.2, 1.4, 0.3, 0.1, 0.05, 0.4]
        far = [5.0, 6.0, 7.0, 0.9, 0.8, 0.5, 0.9]
        profiles = [synthetic_profile("a", twin),
                    synthetic_profile("b", twin),
                    synthetic_profile("c", far)]
        coverage = coverage_report(profiles)
        flagged = {n["member"]: n for n in coverage["nearest_neighbors"]}
        assert flagged["a"]["nearest"] == "b" and flagged["a"]["redundant"]
        assert flagged["b"]["redundant"]
        assert not flagged["c"]["redundant"]

    def test_coverage_reports_empty_regions(self):
        # Every metric sits at the extremes -- the mid third is empty.
        low = [0.0] * len(METRIC_KEYS)
        high = [1.0] * len(METRIC_KEYS)
        coverage = coverage_report([synthetic_profile("lo", low),
                                    synthetic_profile("hi", high)])
        regions = {(e["metric"], e["region"])
                   for e in coverage["empty_regions"]}
        assert ("imbalance_p50", "mid") in regions
        assert all(region == "mid" for _, region in regions)

    def test_coverage_spread_tracks_min_max(self):
        profiles = [synthetic_profile("lo", [0.0] * len(METRIC_KEYS)),
                    synthetic_profile("hi", [2.0] * len(METRIC_KEYS))]
        spread = {s["metric"]: s for s in coverage_report(profiles)["spread"]}
        assert spread["churn_rate"]["min"] == 0.0
        assert spread["churn_rate"]["max"] == 2.0
        assert spread["churn_rate"]["range"] == 2.0


class TestSuiteReport:
    def test_report_renders_members_and_coverage(self):
        ch = characterize_suite(tiny_suite(), num_devices=4)
        text = format_suite_report(ch)
        assert text.startswith("# Suite report: tiny v1")
        assert "## Member workload metrics" in text
        assert "## Coverage: metric spread" in text
        assert "## Coverage: nearest neighbors" in text
        assert "## Coverage: empty regions" in text
        for name in ("skewed", "drifty", "bursty"):
            assert name in text
        for key in METRIC_KEYS:
            assert key in text

    def test_member_rows_match_profiles(self):
        ch = characterize_suite(tiny_suite(), num_devices=4)
        rows = member_rows(ch)
        assert [row["member"] for row in rows] == ["skewed", "drifty",
                                                   "bursty"]
        assert rows[0]["imbalance_p50"] == pytest.approx(
            ch.profiles[0].imbalance_p50, abs=1e-4)


class TestDropPolicySpec:
    def test_default_spec_omits_drop_policy(self):
        spec = ExperimentSpec(name="t")
        assert "drop_policy" not in spec.to_dict()
        # Run ids are content hashes of to_dict, so key absence means the
        # ids of every pre-existing stored spec are untouched by the field.
        explicit = ExperimentSpec(name="t", drop_policy="penalty")
        assert explicit.to_dict() == spec.to_dict()
        assert run_id_for(explicit, ("x",)) == run_id_for(spec, ("x",))

    def test_drop_policy_round_trips(self):
        spec = ExperimentSpec(name="t", drop_policy="truncate")
        data = spec.to_dict()
        assert data["drop_policy"] == "truncate"
        clone = ExperimentSpec.from_json(json.dumps(data))
        assert clone == spec
        assert clone.drop_policy == "truncate"

    def test_drop_policy_changes_run_id(self):
        plain = ExperimentSpec(name="t")
        truncate = ExperimentSpec(name="t", drop_policy="truncate")
        assert run_id_for(plain, ()) != run_id_for(truncate, ())

    def test_invalid_drop_policy_rejected(self):
        with pytest.raises(ValueError, match="drop_policy"):
            ExperimentSpec(name="t", drop_policy="discard")


CLUSTER = ClusterSpec(num_nodes=1, devices_per_node=8)


class TestAdversarialSearch:
    def search(self, suite, store, budget, seed=3):
        return adversarial_search(suite, "static_ep", store, budget=budget,
                                  seed=seed, cluster=CLUSTER)

    def test_budget_validation(self, tmp_path):
        with pytest.raises(ValueError, match="budget"):
            self.search(tiny_suite(), ResultStore(tmp_path / "s"), budget=0)

    def test_search_persists_every_candidate(self, tmp_path):
        suite = tiny_suite()
        store = ResultStore(tmp_path / "store")
        result = self.search(suite, store, budget=6)
        assert len(result.evaluations) == 6
        assert result.simulated == 6 and result.cached == 0
        assert set(result.member_regrets) == set(suite.member_names)
        for evaluation in result.evaluations:
            assert evaluation.run_id in store
        assert result.winner is not None
        assert result.winner.regret == max(e.regret
                                           for e in result.evaluations)

    def test_rerun_is_fully_cached_and_identical(self, tmp_path):
        suite = tiny_suite()
        store = ResultStore(tmp_path / "store")
        first = self.search(suite, store, budget=6)
        second = self.search(suite, store, budget=6)
        assert second.simulated == 0 and second.cached == 6
        assert [e.run_id for e in second.evaluations] \
            == [e.run_id for e in first.evaluations]
        assert second.winner.run_id == first.winner.run_id
        assert second.winner.regret == first.winner.regret

    def test_interrupted_search_resumes_without_resimulating(self, tmp_path):
        suite = tiny_suite()
        store = ResultStore(tmp_path / "store")
        # A search killed mid-budget leaves its evaluations in the store...
        partial = self.search(suite, store, budget=4)
        assert partial.simulated == 4
        # ...so the full-budget resume replays them from the store and only
        # simulates the remainder of its (deterministic) trajectory.
        resumed = self.search(suite, store, budget=10)
        assert resumed.cached == 4 and resumed.simulated == 6
        # The resumed search is bit-identical to one that never stopped.
        fresh = self.search(suite, ResultStore(tmp_path / "fresh"), budget=10)
        assert fresh.simulated == 10
        assert [e.run_id for e in resumed.evaluations] \
            == [e.run_id for e in fresh.evaluations]
        assert resumed.winner.run_id == fresh.winner.run_id
        assert resumed.winner.regret == fresh.winner.regret

    def test_winner_beats_every_default_member(self, tmp_path):
        # The acceptance bar: against static expert parallelism, the search
        # must find a scenario with strictly higher regret than every
        # curated default-v1 member.
        suite = SuiteSpec.load(REPO_SUITE)
        store = ResultStore(tmp_path / "store")
        result = adversarial_search(suite, "static_ep", store, budget=12,
                                    seed=7, cluster=CLUSTER)
        assert set(result.member_regrets) == set(suite.member_names)
        assert result.winner.regret > result.max_member_regret

    def test_search_tags_scope_suite_and_target(self):
        tags = search_tags(tiny_suite(), "static_ep")
        assert tags == ("suite-search:tiny-v1", "target:static_ep")

    def test_graduate_admits_winner_into_next_version(self, tmp_path):
        suite = tiny_suite()
        store = ResultStore(tmp_path / "store")
        result = self.search(suite, store, budget=6)
        grown = graduate(suite, result)
        assert grown.version == 2
        assert len(grown.members) == 4
        newest = grown.members[-1]
        assert newest.name == "adversarial-static_ep-v2"
        assert newest.scenario == result.winner.candidate.scenario
        assert newest.seed == result.winner.candidate.seed
        # Graduating the same winner again is a different suite version.
        assert grown.suite_id != suite.suite_id

    def test_graduate_without_winner_is_an_error(self):
        from repro.suite.search import SearchResult

        empty = SearchResult(suite_id="x", target="static_ep", seed=0,
                             budget=1)
        with pytest.raises(ValueError, match="no winner"):
            graduate(tiny_suite(), empty)

    def test_summary_mentions_cache_split(self, tmp_path):
        suite = tiny_suite()
        store = ResultStore(tmp_path / "store")
        result = self.search(suite, store, budget=4)
        text = result.summary()
        assert "simulated 4, cached 0" in text
        assert "winner" in text
