"""Tests for expert layouts."""

import numpy as np
import pytest

from repro.core.layout import ExpertLayout, replicate_all_layout, static_ep_layout


class TestExpertLayout:
    def test_basic_accessors(self):
        assignment = np.array([[1, 1, 0, 0], [0, 0, 1, 1]])
        layout = ExpertLayout(assignment, capacity=2)
        assert layout.num_devices == 2
        assert layout.num_experts == 4
        assert layout.replicas_per_expert().tolist() == [1, 1, 1, 1]
        assert layout.experts_on_device(0) == [0, 1]
        assert layout.devices_hosting(2) == [1]

    def test_multiple_replicas_on_one_device(self):
        assignment = np.array([[2, 0], [0, 1]])
        layout = ExpertLayout(assignment, capacity=2)
        assert layout.experts_on_device(0) == [0, 0]
        assert layout.experts_used_per_device().tolist() == [1, 1]

    def test_capacity_enforced(self):
        with pytest.raises(ValueError):
            ExpertLayout(np.array([[1, 1, 1]]), capacity=2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ExpertLayout(np.array([[-1, 1]]), capacity=2)

    def test_completeness(self):
        incomplete = ExpertLayout(np.array([[1, 0], [1, 0]]), capacity=1)
        assert not incomplete.is_complete()
        with pytest.raises(ValueError):
            incomplete.validate()

    def test_validate_full_capacity(self):
        layout = ExpertLayout(np.array([[1, 0], [0, 1]]), capacity=2)
        layout.validate()
        with pytest.raises(ValueError):
            layout.validate(require_full_capacity=True)

    def test_difference_counts_changed_slots(self):
        a = ExpertLayout(np.array([[1, 1, 0, 0], [0, 0, 1, 1]]), capacity=2)
        b = ExpertLayout(np.array([[1, 0, 1, 0], [0, 1, 0, 1]]), capacity=2)
        assert a.difference(b) == 2
        assert a.difference(a) == 0

    def test_difference_shape_mismatch(self):
        a = ExpertLayout(np.array([[1, 1]]), capacity=2)
        b = ExpertLayout(np.array([[1, 1], [1, 1]]), capacity=2)
        with pytest.raises(ValueError):
            a.difference(b)

    def test_equality_and_copy(self):
        a = ExpertLayout(np.array([[1, 0], [0, 1]]), capacity=1)
        b = a.copy()
        assert a == b
        b.assignment[0, 0] = 0
        assert a != b

    def test_as_dict(self):
        layout = ExpertLayout(np.array([[1, 0], [0, 1]]), capacity=1)
        assert layout.as_dict() == {0: [0], 1: [1]}

    def test_from_device_lists(self):
        layout = ExpertLayout.from_device_lists([[0, 1], [2, 3]], num_experts=4,
                                                capacity=2)
        assert layout.experts_on_device(1) == [2, 3]
        with pytest.raises(ValueError):
            ExpertLayout.from_device_lists([[9]], num_experts=4, capacity=1)


class TestReferenceLayouts:
    def test_static_ep_layout_structure(self):
        layout = static_ep_layout(num_devices=8, num_experts=8, capacity=2)
        # P_ep = 4 groups; every expert has N / P_ep = 2 replicas.
        assert layout.replicas_per_expert().tolist() == [2] * 8
        assert np.all(layout.assignment.sum(axis=1) == 2)
        # Devices 0 and 4 share EP rank 0 and host experts 0-1.
        assert layout.experts_on_device(0) == [0, 1]
        assert layout.experts_on_device(4) == [0, 1]

    def test_static_ep_layout_matches_fig6a(self):
        """Fig. 6(a): N=4, C=2, E=4 -> experts 0,1 on devices 0,2; 2,3 on 1,3."""
        layout = static_ep_layout(num_devices=4, num_experts=4, capacity=2)
        assert layout.devices_hosting(0) == [0, 2]
        assert layout.devices_hosting(2) == [1, 3]

    def test_static_ep_layout_validation(self):
        with pytest.raises(ValueError):
            static_ep_layout(num_devices=8, num_experts=7, capacity=2)
        with pytest.raises(ValueError):
            static_ep_layout(num_devices=6, num_experts=8, capacity=2)

    def test_replicate_all_layout(self):
        layout = replicate_all_layout(num_devices=3, num_experts=5)
        assert np.all(layout.assignment == 1)
        assert layout.capacity == 5
        layout.validate(require_full_capacity=True)
