"""Tests for the per-device memory model."""

import pytest

from repro.cluster.memory import MemoryModel, MemoryBreakdown
from repro.cluster.topology import ClusterTopology
from repro.core.comm_analysis import fsep_extra_memory_bytes
from repro.workloads.model_configs import get_model_config


@pytest.fixture
def memory_model(paper_topology):
    return MemoryModel(get_model_config("mixtral-8x7b-e8k2"), paper_topology)


class TestMemoryBreakdown:
    def test_total_sums_fields(self):
        breakdown = MemoryBreakdown(parameters=1.0, gradients=2.0,
                                    optimizer_state=3.0, activations=4.0,
                                    transient_buffers=5.0)
        assert breakdown.total == 15.0

    def test_gib_conversion(self):
        gib = 1024.0 ** 3
        breakdown = MemoryBreakdown(parameters=gib, gradients=0, optimizer_state=0,
                                    activations=0, transient_buffers=0)
        assert breakdown.scaled_to_gib().parameters == pytest.approx(1.0)


class TestParadigmBudgets:
    def test_fsep_close_to_fsdp(self, memory_model):
        """FSEP adds only 2*C*Psi_expert over plain FSDP (Sec. 3.1)."""
        tokens = 8192
        fsdp = memory_model.fsdp_breakdown(tokens)
        fsep = memory_model.fsep_breakdown(tokens)
        extra = fsep.total - (fsdp.total - 2 * fsdp.transient_buffers
                              - 2 * (fsdp.parameters - memory_model.total_param_bytes
                                     / memory_model.topology.num_devices))
        # The dominant check: FSEP's parameter+gradient overhead above the
        # sharded state equals the analysis value.
        n = memory_model.topology.num_devices
        sharded = memory_model.total_param_bytes / n
        overhead = (fsep.parameters - sharded) + (fsep.gradients - sharded)
        expected = (2 * fsep_extra_memory_bytes(memory_model.config)
                    + 2 * memory_model.config.non_expert_params_per_layer * 2)
        assert overhead == pytest.approx(expected, rel=1e-6)

    def test_fsep_fits_on_a100(self, memory_model):
        breakdown = memory_model.fsep_breakdown(tokens_per_device=16384)
        assert memory_model.fits(breakdown)

    def test_fsdp_ep_fully_sharded_states(self, memory_model):
        tokens = 8192
        breakdown = memory_model.fsdp_ep_breakdown(tokens, ep_size=4)
        n = memory_model.topology.num_devices
        assert breakdown.optimizer_state == pytest.approx(
            memory_model.config.total_params * 12 / n)

    def test_fsdp_ep_requires_divisible_ep(self, memory_model):
        with pytest.raises(ValueError):
            memory_model.fsdp_ep_breakdown(1024, ep_size=5)

    def test_megatron_more_optimizer_memory_than_fsdp(self, memory_model):
        tokens = 8192
        megatron = memory_model.megatron_breakdown(tokens, tp_size=4, ep_size=4)
        fsdp = memory_model.fsdp_breakdown(tokens)
        assert megatron.optimizer_state > fsdp.optimizer_state

    def test_megatron_optimizer_sharding_reduces_memory(self, memory_model):
        tokens = 8192
        plain = memory_model.megatron_breakdown(tokens, tp_size=4, ep_size=4)
        sharded = memory_model.megatron_breakdown(tokens, tp_size=4, ep_size=4,
                                                  optimizer_sharding_dp=8)
        assert sharded.optimizer_state < plain.optimizer_state

    def test_megatron_invalid_dp(self, memory_model):
        with pytest.raises(ValueError):
            memory_model.megatron_breakdown(1024, tp_size=2, ep_size=4,
                                            optimizer_sharding_dp=0)

    def test_activations_scale_with_tokens(self, memory_model):
        small = memory_model.fsep_breakdown(1024)
        large = memory_model.fsep_breakdown(4096)
        assert large.activations == pytest.approx(4 * small.activations)


class TestFeasibility:
    def test_fits_rejects_bad_margin(self, memory_model):
        breakdown = memory_model.fsep_breakdown(1024)
        with pytest.raises(ValueError):
            memory_model.fits(breakdown, safety_margin=0.0)

    def test_max_tokens_positive_for_fsep(self, memory_model):
        assert memory_model.max_tokens_per_device("fsep") > 0

    def test_max_tokens_monotone_in_memory(self, paper_topology):
        config = get_model_config("mixtral-8x7b-e8k2")
        model = MemoryModel(config, paper_topology)
        loose = model.max_tokens_per_device("fsep", safety_margin=0.9)
        tight = model.max_tokens_per_device("fsep", safety_margin=0.5)
        assert loose >= tight

    def test_max_tokens_unknown_paradigm(self, memory_model):
        with pytest.raises(ValueError):
            memory_model.max_tokens_per_device("unknown")

    def test_checkpointing_reduces_activations(self, paper_topology):
        config = get_model_config("mixtral-8x7b-e8k2")
        with_ckpt = MemoryModel(config, paper_topology, activation_checkpointing=True)
        without = MemoryModel(config, paper_topology, activation_checkpointing=False)
        assert (with_ckpt.fsep_breakdown(8192).activations
                < without.fsep_breakdown(8192).activations)
