"""Tests for the cluster topology substrate."""

import numpy as np
import pytest

from repro.cluster.topology import ClusterTopology, LinkType, group_by_node


class TestClusterTopologyStructure:
    def test_num_devices(self):
        topo = ClusterTopology(num_nodes=4, devices_per_node=8)
        assert topo.num_devices == 32

    def test_paper_cluster_matches_evaluation_setup(self):
        topo = ClusterTopology.paper_cluster()
        assert topo.num_nodes == 4
        assert topo.devices_per_node == 8
        assert topo.num_devices == 32
        assert topo.device_spec.name == "A100-80GB"

    def test_node_assignment_is_contiguous(self):
        topo = ClusterTopology(num_nodes=2, devices_per_node=4)
        assert [topo.node(d) for d in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_devices_on_node(self):
        topo = ClusterTopology(num_nodes=3, devices_per_node=2)
        assert topo.devices_on_node(1) == [2, 3]

    def test_devices_iterator_covers_all(self):
        topo = ClusterTopology(num_nodes=2, devices_per_node=3)
        assert list(topo.devices()) == list(range(6))

    def test_same_node(self):
        topo = ClusterTopology(num_nodes=2, devices_per_node=4)
        assert topo.same_node(0, 3)
        assert not topo.same_node(0, 4)

    def test_invalid_device_raises(self):
        topo = ClusterTopology(num_nodes=1, devices_per_node=2)
        with pytest.raises(ValueError):
            topo.node(5)
        with pytest.raises(ValueError):
            topo.node(-1)

    def test_invalid_node_raises(self):
        topo = ClusterTopology(num_nodes=1, devices_per_node=2)
        with pytest.raises(ValueError):
            topo.devices_on_node(2)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ClusterTopology(num_nodes=0, devices_per_node=4)
        with pytest.raises(ValueError):
            ClusterTopology(num_nodes=1, devices_per_node=0)
        with pytest.raises(ValueError):
            ClusterTopology(num_nodes=1, devices_per_node=2,
                            intra_node_bandwidth=-1.0)


class TestLinks:
    def test_link_types(self):
        topo = ClusterTopology(num_nodes=2, devices_per_node=2)
        assert topo.link_type(0, 0) is LinkType.LOCAL
        assert topo.link_type(0, 1) is LinkType.INTRA_NODE
        assert topo.link_type(0, 2) is LinkType.INTER_NODE

    def test_intra_node_faster_than_inter_node(self):
        topo = ClusterTopology(num_nodes=2, devices_per_node=2)
        assert topo.bandwidth(0, 1) > topo.bandwidth(0, 2)
        assert topo.latency(0, 1) < topo.latency(0, 2)

    def test_local_bandwidth_is_infinite(self):
        topo = ClusterTopology(num_nodes=1, devices_per_node=2)
        assert topo.bandwidth(0, 0) == float("inf")
        assert topo.latency(0, 0) == 0.0

    def test_p2p_time_zero_for_local_or_empty(self):
        topo = ClusterTopology(num_nodes=2, devices_per_node=2)
        assert topo.p2p_time(0, 0, 1e9) == 0.0
        assert topo.p2p_time(0, 2, 0.0) == 0.0

    def test_p2p_time_scales_with_bytes(self):
        topo = ClusterTopology(num_nodes=2, devices_per_node=2)
        t1 = topo.p2p_time(0, 2, 1e9)
        t2 = topo.p2p_time(0, 2, 2e9)
        assert t2 > t1

    def test_p2p_rejects_negative_bytes(self):
        topo = ClusterTopology(num_nodes=1, devices_per_node=2)
        with pytest.raises(ValueError):
            topo.p2p_time(0, 1, -1.0)

    def test_bandwidth_matrix_structure(self):
        topo = ClusterTopology(num_nodes=2, devices_per_node=2)
        mat = topo.bandwidth_matrix()
        assert mat.shape == (4, 4)
        assert np.all(np.isinf(np.diag(mat)))
        assert mat[0, 1] == topo.intra_node_bandwidth
        assert mat[0, 2] == topo.inter_node_bandwidth
        assert mat[2, 3] == topo.intra_node_bandwidth


class TestConstructors:
    def test_single_node(self):
        topo = ClusterTopology.single_node(6)
        assert topo.num_nodes == 1
        assert topo.num_devices == 6

    def test_homogeneous_multi_node(self):
        topo = ClusterTopology.homogeneous(16, devices_per_node=8)
        assert topo.num_nodes == 2

    def test_homogeneous_small(self):
        topo = ClusterTopology.homogeneous(4, devices_per_node=8)
        assert topo.num_nodes == 1
        assert topo.devices_per_node == 4

    def test_homogeneous_rejects_non_multiple(self):
        with pytest.raises(ValueError):
            ClusterTopology.homogeneous(12, devices_per_node=8)

    def test_describe_mentions_device(self):
        assert "A100" in ClusterTopology.paper_cluster().describe()


class TestGroupByNode:
    def test_grouping(self):
        topo = ClusterTopology(num_nodes=2, devices_per_node=2)
        groups = group_by_node(topo, [0, 3, 1, 2])
        assert groups == [[0, 1], [3, 2]]

    def test_empty_devices(self):
        topo = ClusterTopology(num_nodes=2, devices_per_node=2)
        assert group_by_node(topo, []) == [[], []]
