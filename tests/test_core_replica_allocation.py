"""Tests for the replica allocation schemes (Algorithm 4)."""

import numpy as np
import pytest

from repro.core.replica_allocation import (
    allocate_replicas_priority_queue,
    even_replicas,
    expected_max_load,
    perturb_replicas,
)


class TestPriorityQueueAllocation:
    def test_total_slots_used(self):
        loads = np.array([100.0, 10.0, 10.0, 10.0])
        replicas = allocate_replicas_priority_queue(loads, num_devices=4,
                                                    num_experts=4, capacity=2)
        assert replicas.sum() == 8
        assert np.all(replicas >= 1)

    def test_hot_expert_gets_more_replicas(self):
        loads = np.array([1000.0, 10.0, 10.0, 10.0])
        replicas = allocate_replicas_priority_queue(loads, 4, 4, 2)
        assert replicas[0] == replicas.max()
        assert replicas[0] >= 4

    def test_uniform_loads_give_even_allocation(self):
        loads = np.full(8, 50.0)
        replicas = allocate_replicas_priority_queue(loads, 8, 8, 2)
        assert np.all(replicas == 2)

    def test_never_worse_than_even_on_skewed_loads(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            loads = rng.gamma(shape=0.5, scale=100.0, size=8)
            pq = allocate_replicas_priority_queue(loads, 8, 8, 2)
            even = even_replicas(8, 8, 2)
            assert expected_max_load(loads, pq) <= expected_max_load(loads, even) + 1e-9

    def test_zero_load_experts_keep_one_replica(self):
        loads = np.array([100.0, 0.0, 0.0, 0.0])
        replicas = allocate_replicas_priority_queue(loads, 4, 4, 2)
        assert np.all(replicas >= 1)
        assert replicas[0] == 5

    def test_capacity_too_small_rejected(self):
        with pytest.raises(ValueError):
            allocate_replicas_priority_queue(np.ones(10), num_devices=2,
                                             num_experts=10, capacity=1)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            allocate_replicas_priority_queue(np.ones(3), 4, 4, 2)
        with pytest.raises(ValueError):
            allocate_replicas_priority_queue(-np.ones(4), 4, 4, 2)

    def test_deterministic(self):
        loads = np.array([5.0, 5.0, 3.0, 2.0])
        a = allocate_replicas_priority_queue(loads, 4, 4, 2)
        b = allocate_replicas_priority_queue(loads, 4, 4, 2)
        assert np.array_equal(a, b)


class TestEvenAllocation:
    def test_exact_division(self):
        assert even_replicas(8, 8, 2).tolist() == [2] * 8

    def test_remainder_distributed(self):
        replicas = even_replicas(3, 4, 3)  # 9 slots over 4 experts
        assert replicas.sum() == 9
        assert replicas.max() - replicas.min() <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            even_replicas(1, 8, 2)
        with pytest.raises(ValueError):
            even_replicas(0, 4, 2)


class TestPerturbation:
    def test_preserves_total_and_minimum(self):
        rng = np.random.default_rng(0)
        base = even_replicas(8, 8, 2)
        for _ in range(20):
            perturbed = perturb_replicas(base, rng)
            assert perturbed.sum() == base.sum()
            assert np.all(perturbed >= 1)

    def test_requires_valid_start(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            perturb_replicas(np.array([0, 2]), rng)

    def test_single_expert_noop(self):
        rng = np.random.default_rng(0)
        assert perturb_replicas(np.array([4]), rng).tolist() == [4]


class TestExpectedMaxLoad:
    def test_formula(self):
        loads = np.array([100.0, 50.0])
        replicas = np.array([2, 1])
        assert expected_max_load(loads, replicas) == 50.0

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_max_load(np.ones(3), np.ones(2))
        with pytest.raises(ValueError):
            expected_max_load(np.ones(2), np.array([1, 0]))
