"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.collectives import CollectiveCostModel
from repro.cluster.topology import ClusterTopology
from repro.core.cost_model import MoECostModel
from repro.workloads.datasets import SyntheticTextDataset, WIKITEXT_LIKE
from repro.workloads.model_configs import get_model_config, tiny_test_config
from repro.workloads.routing_traces import (
    RoutingTraceConfig,
    SyntheticRoutingTraceGenerator,
)


@pytest.fixture
def small_topology() -> ClusterTopology:
    """A 2-node x 4-device cluster: small but multi-node."""
    return ClusterTopology(num_nodes=2, devices_per_node=4)

@pytest.fixture
def paper_topology() -> ClusterTopology:
    """The 4-node x 8-A100 cluster of the paper's evaluation."""
    return ClusterTopology.paper_cluster()


@pytest.fixture
def single_node_topology() -> ClusterTopology:
    """A single-node 4-device cluster."""
    return ClusterTopology.single_node(4)


@pytest.fixture
def mixtral_e8k2():
    """Mixtral-8x7B e8k2 configuration (Table 2)."""
    return get_model_config("mixtral-8x7b-e8k2")


@pytest.fixture
def mixtral_e16k4():
    """Mixtral-8x7B e16k4 configuration (Table 2)."""
    return get_model_config("mixtral-8x7b-e16k4")


@pytest.fixture
def tiny_config():
    """Tiny 8-expert top-2 model used by the numpy-model tests."""
    return tiny_test_config()


@pytest.fixture
def small_cost_model(small_topology) -> MoECostModel:
    """Cost model with realistic (compute-dominant) per-token costs.

    The planner/tuner tests use the Mixtral-8x7B expert size so the cost
    model's trade-off between balance and locality matches the paper's
    regime (expert computation dominates per-token communication).
    """
    return MoECostModel.from_model_config(
        get_model_config("mixtral-8x7b-e8k2"), small_topology)


@pytest.fixture
def collectives(small_topology) -> CollectiveCostModel:
    return CollectiveCostModel(small_topology)


@pytest.fixture
def skewed_trace(small_topology):
    """A short skewed routing trace on the small topology (8 experts, top-2)."""
    generator = SyntheticRoutingTraceGenerator(RoutingTraceConfig(
        num_devices=small_topology.num_devices,
        num_experts=8,
        num_layers=2,
        tokens_per_device=2048,
        top_k=2,
        skew=0.4,
        seed=11,
    ))
    return generator.generate(6)


@pytest.fixture
def wikitext_dataset() -> SyntheticTextDataset:
    return SyntheticTextDataset(WIKITEXT_LIKE)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
