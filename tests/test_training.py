"""Tests for the numpy training loop and the convergence-study utilities."""

import numpy as np
import pytest

from repro.training.convergence import (
    ConvergenceCurve,
    ConvergenceStudy,
    relative_loss_error,
    steps_to_reach_loss,
)
from repro.training.trainer import Trainer, TrainerConfig
from repro.workloads.datasets import SyntheticTextDataset, WIKITEXT_LIKE
from repro.workloads.model_configs import tiny_test_config


@pytest.fixture(scope="module")
def dataset():
    return SyntheticTextDataset(WIKITEXT_LIKE)


@pytest.fixture(scope="module")
def config():
    return tiny_test_config()


def make_trainer(config, dataset, **overrides):
    defaults = dict(batch_size=2, seq_length=16, learning_rate=3e-3,
                    num_devices=4, seed=3)
    defaults.update(overrides)
    return Trainer(config, TrainerConfig(**defaults), dataset)


class TestTrainerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(batch_size=0)
        with pytest.raises(ValueError):
            TrainerConfig(execution="jax")
        with pytest.raises(ValueError):
            TrainerConfig(learning_rate=0.0)


class TestTrainer:
    def test_vocab_mismatch_rejected(self, dataset):
        small_vocab = tiny_test_config().scaled_down("tiny", vocab_size=16)
        with pytest.raises(ValueError):
            Trainer(small_vocab, TrainerConfig(), dataset)

    def test_training_reduces_loss(self, config, dataset):
        trainer = make_trainer(config, dataset, batch_size=4, seq_length=32)
        result = trainer.train(30)
        assert len(result.lm_losses) == 30
        assert np.mean(result.lm_losses[-5:]) < np.mean(result.lm_losses[:5]) - 0.3

    def test_routing_trace_extracted(self, config, dataset):
        trainer = make_trainer(config, dataset)
        result = trainer.train(4)
        trace = result.routing_trace
        assert trace is not None
        assert trace.routing.shape == (4, config.num_layers, 4, config.num_experts)
        # Token conservation: all assignments accounted for.
        total_assignments = 2 * 16 * config.top_k
        assert np.all(trace.routing.sum(axis=(2, 3)) == total_assignments)

    def test_expert_imbalance_recorded(self, config, dataset):
        trainer = make_trainer(config, dataset)
        result = trainer.train(3)
        imbalance = result.expert_imbalance()
        assert len(imbalance) == 3
        assert all(v >= 1.0 for v in imbalance)

    def test_final_loss_window(self, config, dataset):
        trainer = make_trainer(config, dataset)
        result = trainer.train(4)
        assert result.final_loss(window=2) == pytest.approx(
            np.mean(result.lm_losses[-2:]))

    def test_train_step_returns_stats(self, config, dataset):
        trainer = make_trainer(config, dataset)
        stats = trainer.train_step(0)
        assert set(stats) == {"loss", "lm_loss", "aux_loss"}

    def test_aux_loss_weight_changes_trajectory(self, config, dataset):
        plain = make_trainer(config, dataset, aux_loss_weight=0.0).train(6)
        heavy = make_trainer(config, dataset, aux_loss_weight=1.0).train(6)
        assert not np.allclose(plain.lm_losses, heavy.lm_losses)


class TestFSEPExecutionEquivalence:
    def test_fsep_matches_reference_losses(self, config, dataset):
        """The paper's Fig. 9(b) claim: relative error well below 1e-3."""
        reference = make_trainer(config, dataset, aux_loss_weight=1e-4).train(5)
        fsep = make_trainer(config, dataset, aux_loss_weight=1e-4,
                            execution="fsep").train(5)
        errors = relative_loss_error(fsep.lm_losses, reference.lm_losses)
        assert np.max(np.abs(errors)) < 1e-3

    def test_fsep_trainer_reduces_loss(self, config, dataset):
        result = make_trainer(config, dataset, execution="fsep",
                              batch_size=4, seq_length=32).train(15)
        assert result.lm_losses[-1] < result.lm_losses[0]


class TestConvergenceUtilities:
    def test_relative_loss_error_shapes(self):
        with pytest.raises(ValueError):
            relative_loss_error([1.0], [1.0, 2.0])
        errors = relative_loss_error([1.0, 2.0], [1.0, 1.0])
        assert errors.tolist() == [0.0, 1.0]

    def test_steps_to_reach_loss(self):
        losses = [5.0, 4.0, 3.0, 2.0, 1.0]
        assert steps_to_reach_loss(losses, 2.5) == 3
        assert steps_to_reach_loss(losses, 0.5) is None
        assert steps_to_reach_loss([], 1.0) is None

    def test_convergence_curve_time_axis(self):
        curve = ConvergenceCurve(label="laer", losses=[3.0, 2.0, 1.0],
                                 seconds_per_iteration=2.0)
        assert curve.loss_vs_time()[-1] == (6.0, 1.0)
        assert curve.time_to_reach(2.5) == pytest.approx(4.0)
        assert curve.time_to_reach(0.1) is None

    def test_convergence_study_sweep(self, config, dataset):
        study = ConvergenceStudy(
            model_config=config, dataset=dataset, num_steps=4,
            base_trainer_config=TrainerConfig(batch_size=2, seq_length=16,
                                              learning_rate=3e-3, num_devices=4,
                                              seed=5))
        results = study.aux_loss_sweep([0.0, 1e-2])
        assert set(results) == {0.0, 1e-2}
        assert all(len(r.lm_losses) == 4 for r in results.values())

    def test_loss_over_time_requires_iteration_times(self, config, dataset):
        study = ConvergenceStudy(
            model_config=config, dataset=dataset, num_steps=2,
            base_trainer_config=TrainerConfig(batch_size=2, seq_length=8,
                                              num_devices=4))
        results = {"laer": study.run_single(0.0)}
        with pytest.raises(KeyError):
            study.loss_over_time(results, {})
        curves = study.loss_over_time(results, {"laer": 0.5})
        assert curves[0].label == "laer"
