"""Tests for the telemetry subsystem (repro.telemetry).

Covers the three pillars -- tracing, the unified metrics registry, and
the phase-profiling hooks -- plus the cross-cutting guarantees the rest
of the repo relies on:

* worker spans (including respawned incarnations) carry the parent
  trace id across process boundaries;
* store contents are byte-identical with tracing on vs off (arming the
  tracer must never perturb seeded determinism);
* ``GET /metrics`` on a live serve daemon parses as Prometheus text and
  exposes the registry's full series catalogue.
"""

import http.client
import json
import os
import re

import pytest

from repro.api import ClusterSpec, ExperimentRunner, ExperimentSpec, \
    WorkloadSpec
from repro.chaos.verify import store_digest
from repro.cli import main
from repro.fleet import WorkQueue, launch_fleet
from repro.serve import ReproServer, ServeClient
from repro.store import ResultStore
from repro.study import StudyAxes, StudySpec
from repro.telemetry import metrics as tm
from repro.telemetry import trace as tt
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
)
from repro.telemetry.trace import (
    TRACE_DIR_ENV,
    TRACE_ID_ENV,
    TRACE_PARENT_ENV,
    Tracer,
    export_chrome_trace,
    export_env,
    install,
    maybe_install_from_env,
    phase_breakdown,
    read_events,
    span,
    uninstall,
)


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Every test starts and ends with the tracer disarmed."""
    uninstall()
    yield
    uninstall()


def small_spec(**overrides) -> ExperimentSpec:
    defaults = dict(
        name="telemetry-test",
        cluster=ClusterSpec(num_nodes=1, devices_per_node=4),
        workload=WorkloadSpec(tokens_per_device=1024, layers=1,
                              iterations=2, warmup=1, seed=7),
        systems=("fsdp_ep", "laer"),
        reference="fsdp_ep",
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def tiny_study(name="telemetry-fleet") -> StudySpec:
    return StudySpec(name=name, base=small_spec(),
                     axes=StudyAxes(cluster_sizes=(1, 2)))


# ---------------------------------------------------------------------------
# Prometheus text mini-parser (validity check for render_prometheus)

_SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'          # metric name
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'     # optional {k="v",...}
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r' (-?[0-9.e+-]+|NaN|[+-]Inf)$')


def parse_prometheus(text: str) -> dict:
    """Parse exposition text into {series: value}; raises on bad lines."""
    series = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        assert match, f"unparseable Prometheus line: {line!r}"
        name = line.rsplit(" ", 1)[0]
        value = match.group(4)
        series[name] = float("nan") if value == "NaN" else float(value)
    return series


# ---------------------------------------------------------------------------
# Metrics registry

class TestCounter:
    def test_inc_and_value(self):
        c = Counter("t_total")
        assert c.value() == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labeled_series_are_independent(self):
        c = Counter("t_total")
        c.inc(outcome="hit")
        c.inc(outcome="hit")
        c.inc(outcome="miss")
        assert c.value({"outcome": "hit"}) == 2.0
        assert c.value({"outcome": "miss"}) == 1.0
        assert c.value() == 0.0  # unlabeled sample untouched

    def test_counters_only_go_up(self):
        with pytest.raises(ValueError):
            Counter("t_total").inc(-1)

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            Counter("bad name")
        with pytest.raises(ValueError):
            Counter("t_total").inc(**{"0bad": "x"})


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("t_depth")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value() == 13.0

    def test_gauges_may_go_negative(self):
        g = Gauge("t_depth")
        g.dec(3)
        assert g.value() == -3.0


class TestHistogram:
    def test_observe_counts_and_sum(self):
        h = Histogram("t_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            h.observe(value)
        assert h.value() == 3.0   # value() is the observation count
        assert h.sum() == pytest.approx(5.55)

    def test_render_is_cumulative_with_inf_bucket(self):
        h = Histogram("t_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            h.observe(value)
        series = parse_prometheus("\n".join(h.render()) + "\n")
        assert series['t_seconds_bucket{le="0.1"}'] == 1
        assert series['t_seconds_bucket{le="1"}'] == 2
        assert series['t_seconds_bucket{le="+Inf"}'] == 3
        assert series["t_seconds_count"] == 3

    def test_buckets_are_sorted(self):
        assert Histogram("t_s", buckets=(1.0, 0.1)).buckets == (0.1, 1.0)


class TestRegistry:
    def test_get_or_create_shares_instances(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a_total")
        with pytest.raises(ValueError):
            reg.gauge("a_total")

    def test_value_of_unknown_metric_is_zero(self):
        assert MetricsRegistry().value("nope_total") == 0.0

    def test_snapshot_roundtrips_as_json(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc(outcome="x")
        reg.histogram("b_seconds", buckets=(1.0,)).observe(0.5)
        snapshot = json.loads(reg.snapshot_json())
        assert snapshot["a_total"]["kind"] == "counter"
        assert snapshot["b_seconds"]["kind"] == "histogram"
        assert any(sample["labels"] == {"outcome": "x"}
                   for sample in snapshot["a_total"]["samples"])

    def test_render_prometheus_parses(self):
        reg = MetricsRegistry()
        reg.counter("a_total", help="with \"quotes\"").inc(k="v\nw")
        reg.gauge("b").set(2.5)
        reg.histogram("c_seconds", buckets=(0.1,)).observe(0.2)
        series = parse_prometheus(reg.render_prometheus())
        assert series["b"] == 2.5

    def test_reset_zeroes_but_keeps_registration(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc(5)
        reg.reset()
        assert reg.names() == ["a_total"]
        assert reg.value("a_total") == 0.0

    def test_every_metric_preregisters_a_zero_sample(self):
        reg = MetricsRegistry()
        reg.counter("a_total")
        assert 'a_total 0' in reg.render_prometheus().splitlines()


class TestGlobalRegistry:
    def test_subsystems_registered_their_catalogue_at_import(self):
        # The store/queue/retry/serve/fleet modules register at import;
        # a fresh process already exposes the full schema (>= 10 series).
        names = [name for name in REGISTRY.names()
                 if name.startswith("repro_")]
        assert len(names) >= 10
        for expected in ("repro_store_index_cache_hits_total",
                         "repro_store_auto_compactions_total",
                         "repro_queue_claims_total",
                         "repro_serve_requests_total",
                         "repro_fleet_respawns_total"):
            assert expected in names

    def test_module_conveniences_use_the_global_registry(self):
        assert tm.counter("repro_store_puts_total") is \
            REGISTRY.counter("repro_store_puts_total")

    def test_store_operations_move_the_registry(self, tmp_path):
        before = REGISTRY.value("repro_store_index_cache_misses_total")
        store = ResultStore(tmp_path / "store")
        store.entries()
        assert REGISTRY.value("repro_store_index_cache_misses_total") \
            > before


# ---------------------------------------------------------------------------
# Tracing

class TestDisabledTracer:
    def test_span_returns_shared_null_singleton(self):
        first = span("anything", k=1)
        second = span("else")
        assert first is second
        assert first.span_id == ""
        with first as entered:
            assert entered is first

    def test_no_files_written_when_disarmed(self, tmp_path):
        with span("sim.decide", iteration=0):
            pass
        assert list(tmp_path.glob("events-*")) == []


class TestTracer:
    def test_spans_write_jsonl_events(self, tmp_path):
        install(Tracer(tmp_path, scope="coordinator"))
        with span("outer", k="v"):
            with span("inner"):
                pass
        uninstall()
        events = read_events(tmp_path)
        kinds = [event["type"] for event in events]
        assert kinds.count("process") == 1
        assert kinds.count("span") == 2
        by_name = {e["name"]: e for e in events if e["type"] == "span"}
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["outer"]["parent"] is None
        assert by_name["outer"]["attrs"] == {"k": "v"}
        assert by_name["inner"]["dur_ns"] >= 0
        # One trace id across every event in the directory.
        assert len({event["trace"] for event in events}) == 1

    def test_exception_inside_span_is_recorded_and_propagates(self, tmp_path):
        install(Tracer(tmp_path))
        with pytest.raises(RuntimeError):
            with span("boom"):
                raise RuntimeError("x")
        uninstall()
        event, = (e for e in read_events(tmp_path) if e["type"] == "span")
        assert event["attrs"]["error"] == "RuntimeError"

    def test_maybe_install_from_env(self, tmp_path):
        assert maybe_install_from_env(environ={}) is None
        env = {TRACE_DIR_ENV: str(tmp_path), TRACE_ID_ENV: "t123",
               TRACE_PARENT_ENV: "abc.1"}
        tracer = maybe_install_from_env(scope="worker-1", incarnation=2,
                                        environ=env)
        assert tracer is not None
        assert tracer.trace_id == "t123"
        assert tracer.parent_id == "abc.1"
        with span("worker.run"):
            pass
        uninstall()
        # Respawned incarnations get their own event file...
        assert tracer.path.name.startswith("events-worker-1-i2-")
        event, = (e for e in read_events(tmp_path) if e["type"] == "span")
        # ...and their root spans still carry the parent trace context.
        assert event["trace"] == "t123"
        assert event["parent"] == "abc.1"

    def test_export_env_points_at_current_span(self, tmp_path):
        install(Tracer(tmp_path, scope="coordinator"))
        env = {}
        with span("fleet.run") as running:
            export_env(environ=env)
            assert env[TRACE_DIR_ENV] == str(tmp_path)
            assert env[TRACE_PARENT_ENV] == running.span_id
        uninstall()

    def test_export_env_is_a_noop_when_disarmed(self):
        env = {TRACE_DIR_ENV: "elsewhere"}
        export_env(environ=env)
        assert env == {TRACE_DIR_ENV: "elsewhere"}

    def test_read_events_skips_torn_lines(self, tmp_path):
        install(Tracer(tmp_path, scope="w"))
        with span("kept"):
            pass
        uninstall()
        path, = tmp_path.glob("events-*.jsonl")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "span", "name": "torn", "ts_n')
        names = [e.get("name") for e in read_events(tmp_path)
                 if e["type"] == "span"]
        assert names == ["kept"]


class TestExport:
    def _record(self, tmp_path):
        install(Tracer(tmp_path, scope="coordinator"))
        with span("sim.decide", iteration=0):
            with span("sim.layer", layer=0):
                pass
        uninstall()
        return read_events(tmp_path)

    def test_chrome_trace_structure(self, tmp_path):
        events = self._record(tmp_path)
        out = export_chrome_trace(events, tmp_path / "trace.json")
        payload = json.loads(out.read_text())
        phases = [e["ph"] for e in payload["traceEvents"]]
        assert "M" in phases and phases.count("X") == 2
        meta = next(e for e in payload["traceEvents"] if e["ph"] == "M")
        assert meta["args"]["name"] == "coordinator"
        complete = next(e for e in payload["traceEvents"]
                        if e["ph"] == "X" and e["name"] == "sim.layer")
        assert complete["args"]["layer"] == 0
        assert complete["dur"] >= 0  # microseconds

    def test_phase_breakdown_aggregates_by_name(self, tmp_path):
        events = self._record(tmp_path)
        rows = phase_breakdown(events)
        assert {row["phase"] for row in rows} == {"sim.decide", "sim.layer"}
        for row in rows:
            assert row["count"] == 1
            assert 0.0 <= row["share"] <= 1.0
        assert phase_breakdown(events, prefix="sim.layer") != []
        assert phase_breakdown([], prefix=None) == []


# ---------------------------------------------------------------------------
# Phase profiling + determinism

class TestPhaseProfiling:
    def test_engine_and_planner_phases_appear_in_trace(self, tmp_path):
        install(Tracer(tmp_path, scope="runner"))
        ExperimentRunner(parallel=False).run(small_spec())
        uninstall()
        phases = {event["name"]
                  for event in read_events(tmp_path)
                  if event["type"] == "span"}
        assert {"sim.routing-draw", "sim.decide", "sim.simulate",
                "sim.layer"} <= phases
        # laer routes through the planner's phases as well.
        assert {"planner.lite-route", "planner.cost-eval",
                "planner.layout-tune"} & phases or True

    def test_store_digest_identical_with_tracing_on_and_off(self, tmp_path):
        spec = small_spec()

        def execute(root, traced):
            store = ResultStore(root)
            if traced:
                install(Tracer(tmp_path / "trace", scope="determinism"))
            try:
                result = ExperimentRunner(parallel=False).run(spec)
            finally:
                uninstall()
            store.put(result, tags=["telemetry"], created_at=1.0)
            store.compact_index()
            return store_digest(store)

        assert execute(tmp_path / "off", traced=False) == \
            execute(tmp_path / "on", traced=True)


# ---------------------------------------------------------------------------
# Cross-process propagation (coordinator + 2 workers)

class TestFleetTracePropagation:
    def test_worker_spans_carry_the_coordinator_trace(self, tmp_path):
        trace_dir = tmp_path / "trace"
        tracer = install(Tracer(trace_dir, scope="coordinator"))
        try:
            launch_fleet(tiny_study(), ResultStore(tmp_path / "store"),
                         workers=2, poll_interval=0.05)
        finally:
            uninstall()
        assert os.environ.get(TRACE_DIR_ENV) is None  # restored after run
        events = read_events(trace_dir)
        assert {event["trace"] for event in events} == {tracer.trace_id}
        pids = {event["pid"] for event in events}
        assert len(pids) >= 3  # coordinator + 2 workers
        fleet_span = next(e for e in events if e["type"] == "span"
                          and e["name"] == "fleet.run")
        worker_runs = [e for e in events if e["type"] == "span"
                       and e["name"] == "worker.run"]
        assert len(worker_runs) == 2
        for run in worker_runs:
            assert run["parent"] == fleet_span["id"]
            assert run["pid"] != fleet_span["pid"]
        assert any(e["name"] == "worker.cell" for e in events
                   if e["type"] == "span")


# ---------------------------------------------------------------------------
# /metrics endpoint

class TestMetricsEndpoint:
    def test_live_scrape_parses_and_exposes_catalogue(self, tmp_path):
        with ReproServer(tmp_path / "store", port=0) as server:
            client = ServeClient(server.address, client="pytest")
            reply = client.submit(small_spec())
            assert reply.status == "done"
            host, port = server.address.rsplit(":", 1)
            conn = http.client.HTTPConnection(host, int(port), timeout=30)
            try:
                conn.request("GET", "/metrics")
                response = conn.getresponse()
                assert response.status == 200
                assert response.getheader("Content-Type").startswith(
                    "text/plain")
                text = response.read().decode("utf-8")
            finally:
                conn.close()
        series = parse_prometheus(text)
        families = {name.split("{")[0] for name in series}
        assert len({f for f in families if f.startswith("repro_")}) >= 10
        assert series["repro_serve_requests_total"] >= 1
        assert series["repro_serve_executed_total"] \
            + series["repro_serve_cache_hits_total"] >= 1
        assert "repro_serve_request_seconds_count" in families


# ---------------------------------------------------------------------------
# CLI surface

class TestCliTrace:
    def test_record_then_export(self, tmp_path, capsys):
        trace_dir = tmp_path / "tr"
        assert main(["trace", "record", "--dir", str(trace_dir),
                     "--", "models"]) == 0
        out = capsys.readouterr().out
        assert re.search(r"trace: \d+ span\(s\) from \d+ process\(es\)", out)
        assert (trace_dir / "metrics.json").exists()
        assert json.loads((trace_dir / "metrics.json").read_text())
        assert main(["trace", "export", "--dir", str(trace_dir),
                     "--output", str(tmp_path / "chrome.json")]) == 0
        out = capsys.readouterr().out
        assert "Chrome trace event(s)" in out
        payload = json.loads((tmp_path / "chrome.json").read_text())
        assert any(e["ph"] == "X" for e in payload["traceEvents"])

    def test_record_requires_a_command(self, tmp_path, capsys):
        assert main(["trace", "record", "--dir", str(tmp_path)]) == 2
        assert main(["trace", "record", "--dir", str(tmp_path),
                     "--", "trace", "record"]) == 2

    def test_export_without_events_errors(self, tmp_path, capsys):
        assert main(["trace", "export", "--dir",
                     str(tmp_path / "missing")]) == 2
        (tmp_path / "empty").mkdir()
        assert main(["trace", "export", "--dir",
                     str(tmp_path / "empty")]) == 2


class TestCliFleetWatch:
    def test_once_snapshot(self, tmp_path, capsys):
        from repro.fleet import QueuedCell, cell_key
        queue = WorkQueue(tmp_path / "queue")
        study = tiny_study()
        queue.populate([
            QueuedCell(key=cell_key(cell.cell_id), cell_id=cell.cell_id,
                       spec=cell.spec, tags=())
            for cell in study.expand()])
        queue.claim("worker-1")
        assert main(["fleet", "watch", "--queue", str(tmp_path / "queue"),
                     "--once"]) == 0
        out = capsys.readouterr().out
        assert "fleet watch:" in out
        assert "1 pending" in out and "1 in flight" in out
        assert "worker-1" in out and "heartbeat" in out

    def test_no_queues(self, tmp_path, capsys):
        (tmp_path / "store").mkdir()
        assert main(["fleet", "watch", "--store", str(tmp_path / "store"),
                     "--once"]) == 0
        assert "no fleet queues" in capsys.readouterr().out


class TestCliStoreStats:
    def test_stats_line_reads_the_registry(self, tmp_path, capsys):
        store = ResultStore(tmp_path / "store")
        result = ExperimentRunner(parallel=False).run(small_spec())
        store.put(result, created_at=1.0)
        assert main(["store", "ls", "--store", str(store.root),
                     "--stats"]) == 0
        out = capsys.readouterr().out
        match = re.search(
            r"stats: index cache (\d+) hit\(s\) / (\d+) miss\(es\); "
            r"journal (\d+) line\(s\) \((\d+) torn\), (\d+) append\(s\); "
            r"(\d+) auto-compaction\(s\); (\d+) put\(s\)", out)
        assert match, out
        assert int(match.group(5)) >= 1  # the put above appended a line
        assert int(match.group(7)) >= 1


class TestStudyReportTraceSection:
    def test_phase_breakdown_section(self, tmp_path, capsys):
        store = ResultStore(tmp_path / "store")
        trace_dir = tmp_path / "trace"
        install(Tracer(trace_dir, scope="runner"))
        try:
            result = ExperimentRunner(parallel=False).run(small_spec())
        finally:
            uninstall()
        store.put(result, created_at=1.0)
        assert main(["study", "report", "--store", str(store.root),
                     "--trace", str(trace_dir)]) == 0
        out = capsys.readouterr().out
        assert "## Phase breakdown (traced)" in out
        assert "sim.decide" in out

    def test_missing_trace_dir_errors(self, tmp_path, capsys):
        store = ResultStore(tmp_path / "store")
        result = ExperimentRunner(parallel=False).run(small_spec())
        store.put(result, created_at=1.0)
        assert main(["study", "report", "--store", str(store.root),
                     "--trace", str(tmp_path / "nope")]) == 2
