"""Tests for the command-line interface."""

import pytest

from repro.api import ExperimentResult, ExperimentSpec
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--model", "gpt-4"])

    def test_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.model == "mixtral-8x7b-e8k2"
        assert args.num_nodes == 4


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "mixtral-8x7b-e8k2" in out
        assert "qwen-8x7b-e16k4" in out

    def test_trace_summary_and_save(self, tmp_path, capsys):
        output = tmp_path / "trace.npz"
        code = main(["trace", "--num-nodes", "1", "--devices-per-node", "4",
                     "--tokens-per-device", "512", "--iterations", "3",
                     "--output", str(output)])
        assert code == 0
        assert output.exists()
        out = capsys.readouterr().out
        assert "Routing trace summary" in out

    def test_plan(self, capsys):
        code = main(["plan", "--num-nodes", "1", "--devices-per-node", "4",
                     "--tokens-per-device", "1024", "--iterations", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Planner vs static EP" in out
        assert "laer_rel_max_tokens" in out

    def test_compare_small(self, capsys):
        code = main(["compare", "--num-nodes", "1", "--devices-per-node", "4",
                     "--tokens-per-device", "2048", "--iterations", "3",
                     "--systems", "fsdp_ep", "laer", "--reference", "fsdp_ep"])
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup_vs_fsdp_ep" in out
        assert "Time breakdown" in out

    def test_compare_warns_on_substituted_reference(self, capsys):
        code = main(["compare", "--num-nodes", "1", "--devices-per-node", "4",
                     "--tokens-per-device", "2048", "--iterations", "3",
                     "--systems", "fsdp_ep", "laer",
                     "--reference", "megatron"])
        assert code == 0
        captured = capsys.readouterr()
        assert "warning" in captured.err
        assert "'megatron'" in captured.err
        assert "'fsdp_ep'" in captured.err
        assert "speedup_vs_fsdp_ep" in captured.out

    def test_systems(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        assert "laer_no_comm_opt" in out

    def test_scenarios_lists_builtins(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("steady", "drifting", "bursty-churn", "diurnal",
                     "phase-shift", "straggler", "multi-tenant-mix"):
            assert name in out

    def test_scenarios_verbose_lists_params(self, capsys):
        assert main(["scenarios", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "Parameters of scenario 'bursty-churn'" in out
        assert "Parameters of wrapper 'straggler'" in out
        assert "period" in out and "default" in out
        # trace-replay's path has no default -- flagged as required.
        assert "(required)" in out
        # The terse listing stays terse.
        assert main(["scenarios"]) == 0
        assert "Parameters of" not in capsys.readouterr().out

    def test_compare_with_scenario_and_params(self, capsys):
        code = main(["compare", "--num-nodes", "1", "--devices-per-node", "4",
                     "--tokens-per-device", "2048", "--iterations", "3",
                     "--systems", "fsdp_ep", "laer",
                     "--reference", "fsdp_ep",
                     "--scenario", "bursty-churn", "--param", "period=6"])
        assert code == 0
        assert "speedup_vs_fsdp_ep" in capsys.readouterr().out

    def test_unknown_scenario_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--scenario", "full-moon"])

    def test_bad_scenario_param_is_a_cli_error(self, capsys):
        code = main(["compare", "--num-nodes", "1", "--devices-per-node", "4",
                     "--tokens-per-device", "2048", "--iterations", "3",
                     "--systems", "laer", "--reference", "laer",
                     "--scenario", "steady", "--param", "bogus=1"])
        assert code == 2
        assert "does not accept parameter" in capsys.readouterr().err

    def test_bad_scenario_param_value_is_a_cli_error(self, capsys):
        """Value errors (not just name typos) get the clean error path."""
        code = main(["compare", "--num-nodes", "1", "--devices-per-node", "4",
                     "--tokens-per-device", "2048", "--iterations", "3",
                     "--systems", "laer", "--reference", "laer",
                     "--scenario", "bursty-churn", "--param", "period=1"])
        assert code == 2
        assert "period must be at least 2" in capsys.readouterr().err

    def test_bad_scenario_param_value_in_spec_file(self, tmp_path, capsys):
        spec_path = tmp_path / "bad.json"
        assert main(["run", "--num-nodes", "1", "--devices-per-node", "4",
                     "--tokens-per-device", "2048", "--iterations", "3",
                     "--systems", "laer", "--reference", "laer",
                     "--scenario", "straggler", "--dump-spec",
                     str(spec_path)]) == 0
        capsys.readouterr()
        text = spec_path.read_text().replace('"params": {}',
                                             '"params": {"duration": 99}')
        spec_path.write_text(text)
        assert main(["run", "--spec", str(spec_path)]) == 2
        assert "duration must be in" in capsys.readouterr().err

    def test_malformed_param_is_a_cli_error(self, capsys):
        code = main(["compare", "--num-nodes", "1", "--devices-per-node", "4",
                     "--tokens-per-device", "2048", "--iterations", "3",
                     "--systems", "laer", "--reference", "laer",
                     "--param", "no-equals-sign"])
        assert code == 2
        assert "expected KEY=VALUE" in capsys.readouterr().err

    def test_trace_reports_scenario(self, capsys):
        code = main(["trace", "--num-nodes", "1", "--devices-per-node", "4",
                     "--tokens-per-device", "512", "--iterations", "3",
                     "--scenario", "diurnal"])
        assert code == 0
        assert "(diurnal)" in capsys.readouterr().out

    def test_plan_aggregates_all_layers(self, capsys):
        code = main(["plan", "--num-nodes", "1", "--devices-per-node", "4",
                     "--tokens-per-device", "1024", "--iterations", "3",
                     "--layers", "3"])
        assert code == 0
        assert "aggregated over 3 MoE layers" in capsys.readouterr().out


class TestRunCommand:
    ARGS = ["--num-nodes", "1", "--devices-per-node", "4",
            "--tokens-per-device", "2048", "--iterations", "3",
            "--systems", "fsdp_ep", "laer", "--reference", "fsdp_ep"]

    def test_dump_spec_and_run_match_compare(self, tmp_path, capsys):
        spec_path = tmp_path / "exp.json"
        assert main(["run", *self.ARGS, "--dump-spec", str(spec_path)]) == 0
        assert spec_path.exists()
        capsys.readouterr()

        assert main(["run", "--spec", str(spec_path)]) == 0
        run_out = capsys.readouterr().out
        assert main(["compare", *self.ARGS]) == 0
        compare_out = capsys.readouterr().out
        assert run_out == compare_out

    def test_dump_spec_to_stdout(self, capsys):
        assert main(["run", *self.ARGS, "--dump-spec", "-"]) == 0
        out = capsys.readouterr().out
        spec = ExperimentSpec.from_json(out)
        assert spec.system_keys == ("fsdp_ep", "laer")

    def test_dump_spec_carries_scenario_params(self, capsys):
        code = main(["run", *self.ARGS, "--scenario", "multi-tenant-mix",
                     "--param", "tenants=3", "--dump-spec", "-"])
        assert code == 0
        spec = ExperimentSpec.from_json(capsys.readouterr().out)
        assert spec.workload.scenario == "multi-tenant-mix"
        assert spec.workload.params == {"tenants": 3}

    def test_run_scenario_matches_sequential(self, capsys):
        args = ["run", *self.ARGS, "--scenario", "bursty-churn"]
        assert main(args) == 0
        parallel_out = capsys.readouterr().out
        assert main([*args, "--sequential"]) == 0
        assert capsys.readouterr().out == parallel_out

    def test_run_saves_result(self, tmp_path, capsys):
        result_path = tmp_path / "result.json"
        assert main(["run", *self.ARGS, "--output", str(result_path)]) == 0
        result = ExperimentResult.load(result_path)
        assert result.reference == "fsdp_ep"
        assert result.systems["laer"].throughput > 0


class TestStudyCommands:
    RUN_ARGS = ["study", "run", "sweep-cluster-sizes",
                "--param", "sizes=[1,2]", "--param", "devices_per_node=4",
                "--param", "tokens_per_device=1024",
                "--param", "iterations=2", "--param", "warmup=1",
                "--sequential"]

    def run_small_study(self, store):
        return main(self.RUN_ARGS + ["--store", str(store)])

    def test_studies_lists_builtins(self, capsys):
        assert main(["studies"]) == 0
        out = capsys.readouterr().out
        assert "sweep-cluster-sizes" in out
        assert "sweep-scenarios" in out

    def test_run_persists_and_resumes(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert self.run_small_study(store) == 0
        out = capsys.readouterr().out
        assert "executed 2, skipped 0" in out
        assert (store / "index.json").exists()
        assert len(list((store / "runs").glob("*.json"))) == 2
        # Second invocation resumes: every cell skipped, nothing recomputed.
        assert self.run_small_study(store) == 0
        out = capsys.readouterr().out
        assert "executed 0, skipped 2" in out

    def test_run_from_json_spec(self, tmp_path, capsys):
        from repro.study import make_study

        spec_path = tmp_path / "study.json"
        make_study("sweep-cluster-sizes", sizes=[1], devices_per_node=4,
                   tokens_per_device=1024, iterations=2,
                   warmup=1).save(spec_path)
        code = main(["study", "run", str(spec_path),
                     "--store", str(tmp_path / "store"), "--sequential"])
        assert code == 0
        assert "executed 1" in capsys.readouterr().out

    def test_dump_spec(self, tmp_path, capsys):
        code = main(["study", "run", "sweep-cluster-sizes",
                     "--param", "sizes=[1,2]",
                     "--store", str(tmp_path / "unused"),
                     "--dump-spec", "-"])
        assert code == 0
        out = capsys.readouterr().out
        assert '"cluster_sizes"' in out
        from repro.study import StudySpec
        assert StudySpec.from_json(out).axes.cluster_sizes == (1, 2)

    def test_unknown_study_is_a_cli_error(self, tmp_path, capsys):
        code = main(["study", "run", "no-such-study",
                     "--store", str(tmp_path)])
        assert code == 2
        assert "unknown study" in capsys.readouterr().err

    def test_registered_name_wins_over_same_named_path(self, tmp_path,
                                                       capsys, monkeypatch):
        # A stray directory named like the study (e.g. a store created as
        # --store sweep-cluster-sizes) must not shadow the registry.
        monkeypatch.chdir(tmp_path)
        (tmp_path / "sweep-cluster-sizes").mkdir()
        assert self.run_small_study(tmp_path / "store") == 0
        assert "executed 2" in capsys.readouterr().out

    def test_ls_on_missing_store_is_a_cli_error(self, tmp_path, capsys):
        missing = tmp_path / "no-such-store"
        code = main(["study", "ls", "--store", str(missing)])
        assert code == 2
        assert "no result store" in capsys.readouterr().err
        assert not missing.exists()

    def test_ls_diff_and_report(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert self.run_small_study(store) == 0
        capsys.readouterr()

        assert main(["study", "ls", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "sweep-cluster-sizes/n1x4" in out
        run_ids = [line.split()[0] for line in out.splitlines()
                   if line.startswith("sweep-cluster-sizes-")]
        assert len(run_ids) == 2

        assert main(["study", "ls", "--store", str(store),
                     "--cluster-size", "8"]) == 0
        out = capsys.readouterr().out
        assert "n2x4" in out and "n1x4" not in out

        assert main(["study", "diff", "--store", str(store),
                     run_ids[0], run_ids[1]]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out and "rel_delta" in out

        report_path = tmp_path / "report.md"
        assert main(["study", "report", "--store", str(store),
                     "--study", "sweep-cluster-sizes",
                     "--output", str(report_path)]) == 0
        text = report_path.read_text()
        assert text.startswith("# Study report: sweep-cluster-sizes")
        assert "| run_id |" in text

    def test_report_includes_cluster_size_series(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert self.run_small_study(store) == 0  # sizes [1, 2] -> 4 and 8 GPUs
        capsys.readouterr()
        assert main(["study", "report", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "## Speedup vs cluster size" in out
        assert "| gpus |" in out
        series = [line for line in out.splitlines()
                  if line.startswith("| 4 ") or line.startswith("| 8 ")]
        assert len(series) == 2

    def test_diff_unknown_run_is_a_cli_error(self, tmp_path, capsys):
        code = main(["study", "diff", "--store", str(tmp_path),
                     "nope-a", "nope-b"])
        assert code == 2
        assert "no run" in capsys.readouterr().err

    def test_report_empty_store_is_a_cli_error(self, tmp_path, capsys):
        code = main(["study", "report", "--store", str(tmp_path)])
        assert code == 2
        assert "no stored runs" in capsys.readouterr().err

    def test_report_ands_study_and_tag_filters(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert self.run_small_study(store) == 0
        capsys.readouterr()
        # Both filters apply: the study tag matches but "other" does not.
        code = main(["study", "report", "--store", str(store),
                     "--study", "sweep-cluster-sizes", "--tag", "other"])
        assert code == 2
        err = capsys.readouterr().err
        assert "study:sweep-cluster-sizes" in err and "other" in err


class TestStudyGate:
    RUN_ARGS = TestStudyCommands.RUN_ARGS

    def seed_store(self, store):
        """A baseline-tagged run plus an identical untagged re-run."""
        assert main(self.RUN_ARGS + ["--store", str(store),
                                     "--tag", "baseline"]) == 0
        assert main(self.RUN_ARGS + ["--store", str(store)]) == 0

    def test_gate_passes_on_identical_reruns(self, tmp_path, capsys):
        store = tmp_path / "store"
        self.seed_store(store)
        capsys.readouterr()
        code = main(["study", "gate", "--store", str(store),
                     "--baseline", "baseline"])
        assert code == 0
        assert "gate: OK" in capsys.readouterr().out

    def test_gate_fails_on_regression(self, tmp_path, capsys):
        import json as json_module

        store_dir = tmp_path / "store"
        self.seed_store(store_dir)
        capsys.readouterr()
        # Degrade every non-baseline run's stored throughput by 50%.
        from repro.store import ResultStore

        store = ResultStore(store_dir)
        for entry in store.entries():
            if "baseline" in entry.tags:
                continue
            path = store.run_path(entry.run_id)
            payload = json_module.loads(path.read_text())
            for system in payload["result"]["systems"].values():
                system["throughput"] *= 0.5
            path.write_text(json_module.dumps(payload))
        store.rebuild_index()
        code = main(["study", "gate", "--store", str(store_dir),
                     "--baseline", "baseline"])
        out = capsys.readouterr().out
        assert code == 1
        assert "gate: FAIL" in out and "throughput" in out
        # The FAIL table attributes each regression to its run pair.
        assert "baseline_run" in out and "candidate_run" in out
        assert "sweep-cluster-sizes-" in out

    def test_gate_without_baseline_runs_is_a_cli_error(self, tmp_path,
                                                       capsys):
        store = tmp_path / "store"
        assert main(self.RUN_ARGS + ["--store", str(store)]) == 0
        capsys.readouterr()
        code = main(["study", "gate", "--store", str(store),
                     "--baseline", "baseline"])
        assert code == 2
        assert "no baseline-tagged runs" in capsys.readouterr().err

    def test_gate_on_missing_store_is_a_cli_error(self, tmp_path, capsys):
        code = main(["study", "gate", "--store", str(tmp_path / "nope"),
                     "--baseline", "baseline"])
        assert code == 2
        assert "no result store" in capsys.readouterr().err

    def test_gate_rejects_unknown_metric(self, tmp_path, capsys):
        """A typo'd --metric must be an error, not a vacuous 'gate: OK'."""
        store = tmp_path / "store"
        self.seed_store(store)
        capsys.readouterr()
        code = main(["study", "gate", "--store", str(store),
                     "--baseline", "baseline",
                     "--metric", "thruoghput"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown gate metric" in err and "thruoghput" in err
        # breakdown.* components are legitimate gate metrics.
        code = main(["study", "gate", "--store", str(store),
                     "--baseline", "baseline",
                     "--metric", "breakdown.expert_compute"])
        assert code == 0
        capsys.readouterr()
        # ...but only when they exist in the compared runs: a typo'd
        # component must not vacuously pass either.
        code = main(["study", "gate", "--store", str(store),
                     "--baseline", "baseline",
                     "--metric", "breakdown.expert_compupe"])
        assert code == 2
        err = capsys.readouterr().err
        assert "appear in none" in err and "expert_compupe" in err


class TestFleetCommands:
    RUN_ARGS = ["fleet", "run", "sweep-cluster-sizes",
                "--param", "sizes=[1,2]", "--param", "devices_per_node=4",
                "--param", "tokens_per_device=1024",
                "--param", "iterations=2", "--param", "warmup=1",
                "--workers", "2", "--quiet"]

    def test_fleet_run_executes_and_resumes(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(self.RUN_ARGS + ["--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "executed 2" in out and "failed 0" in out
        assert "2 workers" in out
        assert (store / "index.json").exists()
        assert (store / "index.journal").read_text() == ""
        assert len(list((store / "runs").glob("*.json"))) == 2
        # Re-running resumes every cell.
        assert main(self.RUN_ARGS + ["--store", str(store)]) == 0
        assert "skipped 2" in capsys.readouterr().out

    def test_fleet_resumes_past_study_run(self, tmp_path, capsys):
        """'repro study run' then 'repro fleet run' share run identity."""
        store = tmp_path / "store"
        assert main(TestStudyCommands.RUN_ARGS + ["--store", str(store)]) == 0
        capsys.readouterr()
        assert main(self.RUN_ARGS + ["--store", str(store)]) == 0
        assert "executed 0, skipped 2" in capsys.readouterr().out

    def test_study_run_rejects_sequential_with_workers(self, tmp_path,
                                                       capsys):
        code = main(["study", "run", "sweep-cluster-sizes",
                     "--param", "sizes=[1]", "--store", str(tmp_path),
                     "--sequential", "--workers", "2"])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_study_run_workers_fast_path(self, tmp_path, capsys):
        store = tmp_path / "store"
        code = main(["study", "run", "sweep-cluster-sizes",
                     "--param", "sizes=[1,2]",
                     "--param", "devices_per_node=4",
                     "--param", "tokens_per_device=1024",
                     "--param", "iterations=2", "--param", "warmup=1",
                     "--workers", "2", "--store", str(store)])
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet 'sweep-cluster-sizes'" in out
        assert "executed 2" in out

    def test_fleet_status_and_workers(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(self.RUN_ARGS + ["--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["fleet", "status", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "finished" in out and "sweep-cluster-sizes" in out
        assert main(["fleet", "workers", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "worker-" in out

    def test_fleet_status_on_missing_store_is_a_cli_error(self, tmp_path,
                                                          capsys):
        code = main(["fleet", "status", "--store", str(tmp_path / "nope")])
        assert code == 2
        assert "no result store" in capsys.readouterr().err

    def test_fleet_status_accepts_queue_without_store(self, tmp_path,
                                                      capsys):
        store = tmp_path / "store"
        assert main(self.RUN_ARGS + ["--store", str(store)]) == 0
        capsys.readouterr()
        (queue_dir,) = sorted((store / "queue").iterdir())
        assert main(["fleet", "status", "--queue", str(queue_dir)]) == 0
        assert "finished" in capsys.readouterr().out
        # Neither flag is a usage error, not a crash.
        assert main(["fleet", "status"]) == 2
        assert "pass --store" in capsys.readouterr().err

    def test_fleet_run_zero_workers_is_a_cli_error(self, tmp_path, capsys):
        code = main(["fleet", "run", "sweep-cluster-sizes",
                     "--store", str(tmp_path), "--workers", "0"])
        assert code == 2
        assert "--workers" in capsys.readouterr().err


class TestOverflowFlags:
    ARGS = ["--num-nodes", "1", "--devices-per-node", "4",
            "--tokens-per-device", "1024", "--iterations", "3",
            "--systems", "fsdp_ep", "--reference", "fsdp_ep",
            "--scenario", "bursty-churn", "--param", "period=4",
            "--sequential"]

    def test_overflow_flags_reach_the_spec(self, capsys):
        code = main(["run", *self.ARGS, "--overflow-penalty", "1.0",
                     "--token-capacity", "1024", "--dump-spec", "-"])
        assert code == 0
        spec = ExperimentSpec.from_json(capsys.readouterr().out)
        assert spec.overflow_penalty == 1.0
        assert spec.token_capacity == 1024

    def test_overflow_penalty_changes_the_report(self, capsys):
        assert main(["compare", *self.ARGS]) == 0
        plain = capsys.readouterr().out
        assert main(["compare", *self.ARGS, "--overflow-penalty", "1.0",
                     "--token-capacity", "1024"]) == 0
        charged = capsys.readouterr().out
        assert charged != plain

    def test_drop_policy_reaches_the_spec(self, capsys):
        code = main(["run", *self.ARGS, "--drop-policy", "truncate",
                     "--token-capacity", "1024", "--dump-spec", "-"])
        assert code == 0
        spec = ExperimentSpec.from_json(capsys.readouterr().out)
        assert spec.drop_policy == "truncate"

    def test_default_drop_policy_stays_out_of_the_spec(self, capsys):
        # The default policy is omitted from the canonical JSON so that the
        # content-hashed run ids of pre-existing specs are unchanged.
        code = main(["run", *self.ARGS, "--dump-spec", "-"])
        assert code == 0
        assert '"drop_policy"' not in capsys.readouterr().out

    def test_unknown_drop_policy_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--drop-policy", "discard"])

    def test_drop_policy_changes_the_report(self, capsys):
        capped = ["--overflow-penalty", "1.0", "--token-capacity", "1024"]
        assert main(["compare", *self.ARGS, *capped]) == 0
        penalty = capsys.readouterr().out
        assert main(["compare", *self.ARGS, *capped,
                     "--drop-policy", "truncate"]) == 0
        truncated = capsys.readouterr().out
        assert truncated != penalty


class TestStoreCommands:
    def _populate(self, store):
        assert main(TestStudyCommands.RUN_ARGS + ["--store", str(store)]) == 0

    def test_store_ls_lists_runs(self, tmp_path, capsys):
        store = tmp_path / "store"
        self._populate(store)
        capsys.readouterr()
        assert main(["store", "ls", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "sweep-cluster-sizes" in out
        # The study filters work unchanged under the store group.
        assert main(["store", "ls", "--store", str(store),
                     "--cluster-size", "4"]) == 0
        assert main(["store", "ls", "--store", str(store),
                     "--name", "no-such-study*"]) == 0
        assert "(empty)" in capsys.readouterr().out

    def test_store_compact_then_rebuild(self, tmp_path, capsys):
        store = tmp_path / "store"
        self._populate(store)
        capsys.readouterr()
        assert main(["store", "compact", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "journal folded" in out
        assert (store / "index.journal").read_text() == ""
        assert main(["store", "rebuild", "--store", str(store)]) == 0
        assert "2 run(s) indexed" in capsys.readouterr().out

    def test_store_commands_on_missing_store_exit_2(self, tmp_path, capsys):
        for sub in ("ls", "compact", "rebuild"):
            assert main(["store", sub,
                         "--store", str(tmp_path / "nope")]) == 2
            assert "no result store" in capsys.readouterr().err


class TestServeSubmitCommands:
    SPEC_ARGS = ["--num-nodes", "1", "--devices-per-node", "4",
                 "--tokens-per-device", "1024", "--iterations", "2",
                 "--warmup", "1", "--systems", "laer", "--reference", "laer",
                 "--name", "cli-serve-test"]

    def test_submit_against_live_daemon(self, tmp_path, capsys):
        from repro.serve import ReproServer

        with ReproServer(tmp_path / "store", port=0) as server:
            address = ["--address", server.address]
            assert main(["submit", *address, *self.SPEC_ARGS]) == 0
            assert "cache=miss" in capsys.readouterr().out
            assert main(["submit", *address, *self.SPEC_ARGS,
                         "--tag", "other"]) == 0
            assert "cache=hit" in capsys.readouterr().out
            assert main(["submit", *address, "--status"]) == 0
            assert '"repro-serve"' in capsys.readouterr().out
        assert len(list((tmp_path / "store" / "runs").glob("*.json"))) == 1

    def test_submit_unreachable_daemon_exits_2(self, capsys):
        code = main(["submit", "--address", "127.0.0.1:1",
                     *self.SPEC_ARGS])
        assert code == 2
        assert "unreachable" in capsys.readouterr().err

    def test_submit_bad_spec_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        code = main(["submit", "--address", "127.0.0.1:1",
                     "--spec", str(bad)])
        assert code == 2
        assert "cannot load spec" in capsys.readouterr().err


class TestSuiteCommands:
    def write_tiny_suite(self, tmp_path):
        from repro.suite import SuiteMember, SuiteSpec

        suite = SuiteSpec(
            name="tiny", tokens_per_device=512, iterations=4, warmup=1,
            members=(
                SuiteMember(name="skewed", scenario="steady", seed=3,
                            skew=0.15),
                SuiteMember(name="drifty", scenario="drifting", seed=4),
            ))
        return suite, suite.save(tmp_path / "tiny.json")

    def test_make_writes_the_default_suite(self, tmp_path, capsys):
        from repro.suite import SuiteSpec, default_suite

        out_path = tmp_path / "default.json"
        assert main(["suite", "make", "--output", str(out_path)]) == 0
        assert default_suite().suite_id in capsys.readouterr().out
        assert SuiteSpec.load(out_path) == default_suite()
        # Without --output the JSON goes to stdout.
        assert main(["suite", "make"]) == 0
        assert '"members"' in capsys.readouterr().out

    def test_ls_lists_members(self, tmp_path, capsys):
        suite, path = self.write_tiny_suite(tmp_path)
        assert main(["suite", "ls", str(path)]) == 0
        out = capsys.readouterr().out
        assert suite.suite_id in out
        assert "skewed" in out and "drifty" in out

    def test_ls_missing_suite_is_a_cli_error(self, tmp_path, capsys):
        code = main(["suite", "ls", str(tmp_path / "nope.json")])
        assert code == 2
        assert "cannot load suite" in capsys.readouterr().err

    def test_characterize_renders_coverage(self, tmp_path, capsys):
        _, path = self.write_tiny_suite(tmp_path)
        assert main(["suite", "characterize", str(path),
                     "--devices-per-node", "4"]) == 0
        out = capsys.readouterr().out
        assert "## Member workload metrics" in out
        assert "## Coverage: metric spread" in out
        assert "imbalance_p50" in out

    def test_report_from_saved_characterization(self, tmp_path, capsys):
        _, path = self.write_tiny_suite(tmp_path)
        ch_path = tmp_path / "ch.json"
        assert main(["suite", "characterize", str(path),
                     "--devices-per-node", "4",
                     "--output", str(ch_path)]) == 0
        report_path = tmp_path / "report.md"
        assert main(["suite", "report", str(path),
                     "--characterization", str(ch_path),
                     "--output", str(report_path)]) == 0
        text = report_path.read_text()
        assert text.startswith("# Suite report: tiny v1")
        assert "## Coverage: nearest neighbors" in text

    def test_report_rejects_mismatched_characterization(self, tmp_path,
                                                        capsys):
        _, path = self.write_tiny_suite(tmp_path)
        ch_path = tmp_path / "ch.json"
        assert main(["suite", "characterize", str(path),
                     "--devices-per-node", "4",
                     "--output", str(ch_path)]) == 0
        assert main(["suite", "make", "--output",
                     str(tmp_path / "default.json")]) == 0
        capsys.readouterr()
        code = main(["suite", "report", str(tmp_path / "default.json"),
                     "--characterization", str(ch_path)])
        assert code == 2
        assert "is for suite" in capsys.readouterr().err

    def test_search_runs_resumes_and_graduates(self, tmp_path, capsys):
        _, path = self.write_tiny_suite(tmp_path)
        store = tmp_path / "store"
        args = ["suite", "search", str(path), "--store", str(store),
                "--target", "static_ep", "--budget", "3", "--seed", "1",
                "--quiet"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "simulated 3, cached 0" in out
        assert "winner regret" in out
        # Same store, same seed: the rerun replays from the store.
        next_path = tmp_path / "tiny-v2.json"
        assert main(args + ["--graduate", str(next_path)]) == 0
        out = capsys.readouterr().out
        assert "simulated 0, cached 3" in out
        assert "Graduated winner into tiny-v2-" in out
        from repro.suite import SuiteSpec

        graduated = SuiteSpec.load(next_path)
        assert graduated.version == 2
        assert len(graduated.members) == 3

    def test_search_rejects_bad_budget(self, tmp_path, capsys):
        _, path = self.write_tiny_suite(tmp_path)
        code = main(["suite", "search", str(path),
                     "--store", str(tmp_path / "store"), "--budget", "0"])
        assert code == 2
        assert "--budget" in capsys.readouterr().err


class TestChaosCommands:
    def test_chaos_plans_lists_builtins(self, capsys):
        assert main(["chaos", "plans"]) == 0
        out = capsys.readouterr().out
        assert "worker-crash" in out
        assert "serve-degradation" in out

    def test_chaos_points_lists_registry(self, capsys):
        assert main(["chaos", "points"]) == 0
        out = capsys.readouterr().out
        assert "queue.post-claim" in out
        assert "store.mid-journal-line" in out

    def test_chaos_run_torn_journal_quick(self, tmp_path, capsys,
                                          monkeypatch):
        monkeypatch.chdir(tmp_path)
        report_path = tmp_path / "report.json"
        code = main(["chaos", "run", "--plan", "torn-journal", "--quick",
                     "--store", str(tmp_path / "scratch"),
                     "--report", str(report_path)])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "invariants: ok" in out
        assert "chaos result: PASS" in out
        assert report_path.exists()

    def test_chaos_run_refuses_foreign_directory(self, tmp_path, capsys):
        victim = tmp_path / "precious"
        victim.mkdir()
        (victim / "data.txt").write_text("keep me")
        code = main(["chaos", "run", "--plan", "torn-journal",
                     "--store", str(victim)])
        assert code == 2
        assert "refusing to wipe" in capsys.readouterr().err
        assert (victim / "data.txt").exists()


class TestStorePruneCommand:
    def test_prune_requires_a_bound(self, tmp_path, capsys):
        assert main(["store", "prune", "--store", str(tmp_path)]) == 2
        assert "--older-than" in capsys.readouterr().err

    def test_prune_and_dry_run(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(TestStudyCommands.RUN_ARGS
                    + ["--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["store", "prune", "--store", str(store),
                     "--max-runs", "1", "--dry-run"]) == 0
        assert "would delete 1 run(s)" in capsys.readouterr().out
        assert main(["store", "prune", "--store", str(store),
                     "--max-runs", "1"]) == 0
        assert "pruned 1 run(s)" in capsys.readouterr().out
        assert main(["store", "ls", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "quarantine: 0 run(s)" in out  # the new ls counters line


class TestSubmitRetryFlags:
    def test_retries_flag_builds_a_policy_and_still_fails_cleanly(
            self, capsys):
        code = main(["submit", "--address", "127.0.0.1:1", "--status",
                     "--retries", "1", "--retry-deadline", "0.2"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unreachable" in err


class TestCalibCommands:
    def _measure(self, tmp_path, capsys, extra=()):
        code = main(["calib", "measure", "--output", str(tmp_path / "obs"),
                     "--num-nodes", "2", "--devices-per-node", "4",
                     "--seed", "3", "--tiny", *extra])
        assert code == 0
        out = capsys.readouterr().out
        assert "observations in" in out
        return tmp_path / "obs"

    def test_measure_writes_csvs_and_ground_truth(self, tmp_path, capsys):
        obs = self._measure(tmp_path, capsys)
        for name in ("comm.csv", "compute.csv", "all_to_all.csv",
                     "meta.json", "ground_truth.json"):
            assert (obs / name).exists()

    def test_measure_rejects_linkless_cluster(self, tmp_path, capsys):
        code = main(["calib", "measure", "--output", str(tmp_path / "obs"),
                     "--num-nodes", "1", "--devices-per-node", "1"])
        assert code == 2

    def test_fit_recovers_and_saves_profile(self, tmp_path, capsys):
        obs = self._measure(tmp_path, capsys)
        profile_path = tmp_path / "profile.json"
        code = main(["calib", "fit", "--observations", str(obs),
                     "--output", str(profile_path), "--min-r2", "0.99"])
        assert code == 0
        out = capsys.readouterr().out
        assert "calib fit: ok" in out
        assert "r2_min=1.0000" in out
        assert profile_path.exists()
        from repro.calib import CalibrationProfile, GroundTruthMachine
        import json as json_mod
        fitted = CalibrationProfile.load(profile_path)
        truth = GroundTruthMachine.from_dict(json_mod.loads(
            (obs / "ground_truth.json").read_text())).as_profile()
        assert fitted.flops_scale == pytest.approx(truth.flops_scale,
                                                   rel=1e-9)

    def test_fit_gate_trips_on_impossible_floor(self, tmp_path, capsys):
        obs = self._measure(tmp_path, capsys, extra=("--noise", "0.3"))
        code = main(["calib", "fit", "--observations", str(obs),
                     "--min-r2", "0.9999999"])
        assert code == 1
        assert "FIT GATE FAILED" in capsys.readouterr().err

    def test_fit_missing_observations_is_usage_error(self, tmp_path, capsys):
        code = main(["calib", "fit", "--observations",
                     str(tmp_path / "nowhere")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_report(self, tmp_path, capsys):
        obs = self._measure(tmp_path, capsys)
        report_path = tmp_path / "report.md"
        code = main(["calib", "report", "--observations", str(obs),
                     "--output", str(report_path)])
        assert code == 0
        text = report_path.read_text()
        assert "Fitted profile" in text
        assert "Worst-fit links" in text

    def test_apply_embeds_profile_in_spec(self, tmp_path, capsys):
        obs = self._measure(tmp_path, capsys)
        profile_path = tmp_path / "profile.json"
        assert main(["calib", "fit", "--observations", str(obs),
                     "--output", str(profile_path)]) == 0
        spec_path = tmp_path / "exp.json"
        assert main(["run", "--scenario", "steady", "--iterations", "2",
                     "--num-nodes", "1", "--devices-per-node", "4",
                     "--tokens-per-device", "512",
                     "--dump-spec", str(spec_path)]) == 0
        out_path = tmp_path / "exp_cal.json"
        code = main(["calib", "apply", "--profile", str(profile_path),
                     "--spec", str(spec_path), "--output", str(out_path)])
        assert code == 0
        spec = ExperimentSpec.load(out_path)
        assert spec.calibration is not None
        from repro.calib import CalibrationProfile
        assert spec.calibration == CalibrationProfile.load(profile_path)


class TestScenarioRobustnessSection:
    def _store_with_scenarios(self, tmp_path):
        from repro.api.specs import ClusterSpec, WorkloadSpec
        from repro.api.runner import SystemResult
        from repro.store import ResultStore

        store = ResultStore(tmp_path / "store")
        # laer wins everywhere; static_ep collapses only under 'bursty':
        # expect zero spread for laer and a wide one for static_ep.
        throughputs = {"steady": {"laer": 200.0, "static_ep": 180.0},
                       "straggler": {"laer": 200.0, "static_ep": 100.0}}
        for scenario, by_system in throughputs.items():
            spec = ExperimentSpec(
                name=f"robust-{scenario}",
                cluster=ClusterSpec(num_nodes=1, devices_per_node=4),
                workload=WorkloadSpec(tokens_per_device=512, layers=1,
                                      iterations=2, scenario=scenario),
                systems=tuple(by_system),
                reference="laer")
            systems = {
                key: SystemResult(
                    key=key, system=key, throughput=value,
                    mean_iteration_s=0.5, tokens_per_iteration=2048,
                    speedup_vs_reference=value / by_system["laer"],
                    breakdown_s={"expert_compute": 0.25})
                for key, value in by_system.items()}
            store.put(ExperimentResult(
                spec=spec, reference="laer", requested_reference="laer",
                systems=systems, execution_mode="sequential"),
                tags=("study:robust",))
        return store

    def test_section_reports_regret_spread(self, tmp_path, capsys):
        store = self._store_with_scenarios(tmp_path)
        code = main(["study", "report", "--store", str(store.root),
                     "--study", "robust"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Scenario robustness" in out
        laer_row = next(line for line in out.splitlines()
                        if line.startswith("| laer"))
        static_row = next(line for line in out.splitlines()
                          if line.startswith("| static_ep"))
        # laer is the per-run best in both scenarios: zero regret, zero
        # spread.  static_ep: 11.1% regret on steady, 100% on straggler.
        assert "0.0%" in laer_row
        assert "11.1%" in static_row and "100.0%" in static_row
        assert "straggler" in static_row

    def test_section_needs_two_scenarios(self, tmp_path, capsys):
        store = self._store_with_scenarios(tmp_path)
        # Report only the steady runs: one scenario -> no spread to show.
        steady = [e for e in store.entries() if e.scenario == "steady"]
        assert len(steady) == 1
        code = main(["study", "report", "--store", str(store.root),
                     "--tag", "study:robust", "--output",
                     str(tmp_path / "full.md")])
        assert code == 0
        capsys.readouterr()
        single = tmp_path / "single-store"
        import shutil
        shutil.copytree(store.root, single)
        from repro.store import ResultStore
        trimmed = ResultStore(single)
        for entry in trimmed.entries():
            if entry.scenario != "steady":
                trimmed.delete(entry.run_id)
        code = main(["study", "report", "--store", str(single)])
        assert code == 0
        assert "Scenario robustness" not in capsys.readouterr().out
