"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--model", "gpt-4"])

    def test_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.model == "mixtral-8x7b-e8k2"
        assert args.num_nodes == 4


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "mixtral-8x7b-e8k2" in out
        assert "qwen-8x7b-e16k4" in out

    def test_trace_summary_and_save(self, tmp_path, capsys):
        output = tmp_path / "trace.npz"
        code = main(["trace", "--num-nodes", "1", "--devices-per-node", "4",
                     "--tokens-per-device", "512", "--iterations", "3",
                     "--output", str(output)])
        assert code == 0
        assert output.exists()
        out = capsys.readouterr().out
        assert "Routing trace summary" in out

    def test_plan(self, capsys):
        code = main(["plan", "--num-nodes", "1", "--devices-per-node", "4",
                     "--tokens-per-device", "1024", "--iterations", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Planner vs static EP" in out
        assert "laer_rel_max_tokens" in out

    def test_compare_small(self, capsys):
        code = main(["compare", "--num-nodes", "1", "--devices-per-node", "4",
                     "--tokens-per-device", "2048", "--iterations", "3",
                     "--systems", "fsdp_ep", "laer", "--reference", "fsdp_ep"])
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup_vs_fsdp_ep" in out
        assert "Time breakdown" in out
