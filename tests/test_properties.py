"""Property-based tests (hypothesis) for the core invariants.

These tests exercise the planner's data structures with arbitrary (bounded)
inputs and check the invariants the paper's correctness relies on:

* replica allocations always use exactly ``N * C`` slots with >= 1 per expert;
* greedy relocation always produces capacity-respecting, complete layouts;
* lite routing conserves tokens and never routes to a non-hosting device;
* FSEP shard -> restore is lossless and reshard-reduce equals a plain sum;
* the layout tuner's plan always satisfies the cost-model constraints.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.topology import ClusterTopology
from repro.core.cost_model import MoECostModel
from repro.core.fsep import FSEPShardedExperts
from repro.core.layout import ExpertLayout
from repro.core.layout_tuner import ExpertLayoutTuner
from repro.core.lite_routing import lite_route, _split_evenly
from repro.core.relocation import relocate_experts
from repro.core.replica_allocation import (
    allocate_replicas_priority_queue,
    even_replicas,
)
from repro.workloads.model_configs import get_model_config

MAX_EXAMPLES = 30


def topology_for(num_devices: int) -> ClusterTopology:
    if num_devices % 2 == 0 and num_devices > 2:
        return ClusterTopology(num_nodes=2, devices_per_node=num_devices // 2)
    return ClusterTopology(num_nodes=1, devices_per_node=num_devices)


@st.composite
def allocation_problem(draw):
    num_devices = draw(st.sampled_from([2, 4, 6, 8]))
    num_experts = draw(st.sampled_from([2, 4, 8, 16]))
    capacity = draw(st.integers(min_value=1, max_value=4))
    # Ensure the cluster can host one replica per expert.
    if num_devices * capacity < num_experts:
        capacity = int(np.ceil(num_experts / num_devices))
    loads = draw(st.lists(st.integers(min_value=0, max_value=10_000),
                          min_size=num_experts, max_size=num_experts))
    return num_devices, num_experts, capacity, np.asarray(loads, dtype=np.float64)


@st.composite
def routing_problem(draw):
    num_devices, num_experts, capacity, loads = draw(allocation_problem())
    routing = draw(st.lists(
        st.lists(st.integers(min_value=0, max_value=500),
                 min_size=num_experts, max_size=num_experts),
        min_size=num_devices, max_size=num_devices))
    return num_devices, num_experts, capacity, np.asarray(routing, dtype=np.int64)


class TestSplitEvenlyProperties:
    @given(total=st.integers(min_value=0, max_value=10_000),
           weights=st.lists(st.integers(min_value=0, max_value=9),
                            min_size=1, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_conserves_and_respects_zero_weights(self, total, weights):
        weights = np.asarray(weights, dtype=np.float64)
        if weights.sum() == 0:
            weights[0] = 1.0
        split = _split_evenly(total, weights)
        assert split.sum() == total
        assert np.all(split >= 0)
        assert np.all(split[weights == 0] == 0)


class TestReplicaAllocationProperties:
    @given(problem=allocation_problem())
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_priority_queue_allocation_valid(self, problem):
        num_devices, num_experts, capacity, loads = problem
        replicas = allocate_replicas_priority_queue(
            loads, num_devices, num_experts, capacity)
        assert replicas.sum() == num_devices * capacity
        assert np.all(replicas >= 1)

    @given(problem=allocation_problem())
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_even_allocation_valid(self, problem):
        num_devices, num_experts, capacity, _ = problem
        replicas = even_replicas(num_devices, num_experts, capacity)
        assert replicas.sum() == num_devices * capacity
        assert np.all(replicas >= 1)
        assert replicas.max() - replicas.min() <= 1


class TestRelocationProperties:
    @given(problem=allocation_problem())
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_layout_valid(self, problem):
        num_devices, num_experts, capacity, loads = problem
        topology = topology_for(num_devices)
        replicas = allocate_replicas_priority_queue(
            loads, num_devices, num_experts, capacity)
        layout = relocate_experts(replicas, loads, topology, capacity)
        layout.validate()
        assert np.all(layout.assignment.sum(axis=1) <= capacity)
        assert np.array_equal(layout.replicas_per_expert(), replicas)


class TestLiteRoutingProperties:
    @given(problem=routing_problem())
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_plan_conserves_and_places_correctly(self, problem):
        num_devices, num_experts, capacity, routing = problem
        topology = topology_for(num_devices)
        loads = routing.sum(axis=0).astype(np.float64)
        replicas = allocate_replicas_priority_queue(
            loads, num_devices, num_experts, capacity)
        layout = relocate_experts(replicas, loads, topology, capacity)
        plan = lite_route(routing, layout, topology)
        assert np.array_equal(plan.sum(axis=2), routing)
        hosted = layout.assignment.T > 0
        assert np.all(plan.sum(axis=0)[~hosted] == 0)


class TestFSEPProperties:
    @given(num_devices=st.integers(min_value=1, max_value=8),
           num_experts=st.integers(min_value=1, max_value=6),
           expert_size=st.integers(min_value=1, max_value=64),
           seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_shard_restore_roundtrip(self, num_devices, num_experts,
                                     expert_size, seed):
        rng = np.random.default_rng(seed)
        experts = [rng.normal(size=expert_size) for _ in range(num_experts)]
        sharded = FSEPShardedExperts(experts, num_devices=num_devices)
        for idx, original in enumerate(experts):
            assert np.allclose(sharded.restore_expert(idx), original)

    @given(num_devices=st.integers(min_value=2, max_value=6),
           seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_reshard_reduce_equals_sum(self, num_devices, seed):
        rng = np.random.default_rng(seed)
        experts = [rng.normal(size=30) for _ in range(3)]
        sharded = FSEPShardedExperts(experts, num_devices=num_devices)
        contributions = {}
        expected = np.zeros(30)
        for device in range(num_devices):
            if rng.random() < 0.6:
                grad = rng.normal(size=30)
                contributions[device] = {1: grad}
                expected += grad
        result = sharded.reshard(contributions)
        assert np.allclose(sharded.reduce_full_gradient(result, 1), expected)


class TestTunerProperties:
    @given(problem=routing_problem())
    @settings(max_examples=15, deadline=None)
    def test_tuned_plan_satisfies_constraints(self, problem):
        num_devices, num_experts, capacity, routing = problem
        topology = topology_for(num_devices)
        cost_model = MoECostModel.from_model_config(
            get_model_config("mixtral-8x7b-e8k2"), topology)
        tuner = ExpertLayoutTuner(topology, cost_model, capacity)
        result = tuner.solve(routing)
        cost_model.check_constraints(result.layout, result.routing_plan, routing)

    @given(problem=routing_problem())
    @settings(max_examples=15, deadline=None)
    def test_tuned_max_load_not_worse_than_single_device_total(self, problem):
        num_devices, num_experts, capacity, routing = problem
        topology = topology_for(num_devices)
        cost_model = MoECostModel.from_model_config(
            get_model_config("mixtral-8x7b-e8k2"), topology)
        tuner = ExpertLayoutTuner(topology, cost_model, capacity)
        result = tuner.solve(routing)
        assert result.cost.max_tokens <= routing.sum()
