"""Tests for the collective communication cost models."""

import numpy as np
import pytest

from repro.cluster.collectives import CollectiveCostModel
from repro.cluster.topology import ClusterTopology


@pytest.fixture
def model():
    return CollectiveCostModel(ClusterTopology(num_nodes=2, devices_per_node=4))


class TestAllToAll:
    def test_zero_traffic_costs_nothing(self, model):
        traffic = np.zeros((8, 8))
        assert model.all_to_all(traffic) == 0.0

    def test_cost_grows_with_traffic(self, model):
        t1 = model.uniform_all_to_all(1e6)
        t2 = model.uniform_all_to_all(2e6)
        assert t2 > t1

    def test_inter_node_traffic_costs_more(self, model):
        n = 8
        intra = np.zeros((n, n))
        intra[0, 1] = 1e9
        inter = np.zeros((n, n))
        inter[0, 4] = 1e9
        assert model.all_to_all(inter) > model.all_to_all(intra)

    def test_diagonal_is_free(self, model):
        traffic = np.zeros((8, 8))
        np.fill_diagonal(traffic, 1e12)
        assert model.all_to_all(traffic) == 0.0

    def test_skewed_traffic_slower_than_balanced(self, model):
        """The same total volume concentrated on one receiver takes longer."""
        n = 8
        total = 7e8
        balanced = np.full((n, n), total / (n * (n - 1)))
        np.fill_diagonal(balanced, 0.0)
        skewed = np.zeros((n, n))
        skewed[:, 0] = total / (n - 1)
        skewed[0, 0] = 0.0
        # Rebalance so totals match (sender 0 sends nothing in skewed case).
        assert model.all_to_all(skewed) > model.all_to_all(balanced)

    def test_wrong_shape_rejected(self, model):
        with pytest.raises(ValueError):
            model.all_to_all(np.zeros((3, 3)))

    def test_negative_traffic_rejected(self, model):
        traffic = np.zeros((8, 8))
        traffic[0, 1] = -1
        with pytest.raises(ValueError):
            model.all_to_all(traffic)

    def test_subgroup(self, model):
        traffic = np.full((2, 2), 1e6)
        np.fill_diagonal(traffic, 0.0)
        t_intra = model.all_to_all(traffic, group=[0, 1])
        t_inter = model.all_to_all(traffic, group=[0, 4])
        assert t_inter > t_intra

    def test_single_member_group(self, model):
        assert model.all_to_all(np.zeros((1, 1)), group=[3]) == 0.0


class TestRingCollectives:
    def test_all_gather_zero(self, model):
        assert model.all_gather(0.0) == 0.0

    def test_all_gather_scales_with_bytes(self, model):
        assert model.all_gather(2e6) > model.all_gather(1e6)

    def test_reduce_scatter_equals_all_gather(self, model):
        assert model.reduce_scatter(1e6) == pytest.approx(model.all_gather(1e6))

    def test_all_reduce_about_twice_all_gather(self, model):
        ag = model.all_gather(1e8 / 8)
        ar = model.all_reduce(1e8)
        assert ar == pytest.approx(2 * ag, rel=0.2)

    def test_single_rank_group_free(self, model):
        assert model.all_reduce(1e9, group=[2]) == 0.0

    def test_intra_node_group_faster(self, model):
        intra = model.all_gather(1e7, group=[0, 1, 2, 3])
        inter = model.all_gather(1e7, group=[0, 1, 4, 5])
        assert intra < inter


class TestBroadcastAndP2P:
    def test_broadcast_zero(self, model):
        assert model.broadcast(0.0) == 0.0

    def test_broadcast_single_member(self, model):
        assert model.broadcast(1e9, group=[0]) == 0.0

    def test_broadcast_inter_node_slower(self, model):
        intra = model.broadcast(1e8, group=[0, 1, 2])
        inter = model.broadcast(1e8, group=[0, 1, 4])
        assert inter > intra

    def test_point_to_point(self, model):
        assert model.point_to_point(0, 0, 1e9) == 0.0
        assert model.point_to_point(0, 4, 1e8) > model.point_to_point(0, 1, 1e8)


class TestValidation:
    def test_efficiency_bounds(self):
        topo = ClusterTopology(num_nodes=1, devices_per_node=2)
        with pytest.raises(ValueError):
            CollectiveCostModel(topo, efficiency=0.0)
        with pytest.raises(ValueError):
            CollectiveCostModel(topo, efficiency=1.5)

    def test_duplicate_group_rejected(self, model):
        with pytest.raises(ValueError):
            model.all_gather(1e6, group=[0, 0])

    def test_unknown_device_rejected(self, model):
        with pytest.raises(ValueError):
            model.all_gather(1e6, group=[0, 99])

    def test_empty_group_rejected(self, model):
        with pytest.raises(ValueError):
            model.all_gather(1e6, group=[])
