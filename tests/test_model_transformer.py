"""Tests for the full MoE transformer."""

import numpy as np
import pytest

from repro.model.transformer import MoETransformer
from repro.workloads.model_configs import tiny_test_config


@pytest.fixture
def model():
    return MoETransformer(tiny_test_config(), aux_loss_weight=1e-2, seed=0)


def batch(model, batch_size=2, seq=8, seed=0):
    rng = np.random.default_rng(seed)
    vocab = model.config.vocab_size
    inputs = rng.integers(0, vocab, size=(batch_size, seq))
    targets = rng.integers(0, vocab, size=(batch_size, seq))
    return inputs, targets


class TestForward:
    def test_logits_shape(self, model):
        inputs, targets = batch(model)
        out = model.forward(inputs, targets)
        assert out.logits.shape == (2, 8, model.config.vocab_size)

    def test_loss_composition(self, model):
        inputs, targets = batch(model)
        out = model.forward(inputs, targets)
        assert out.loss == pytest.approx(
            out.lm_loss + model.aux_loss_weight * out.aux_loss)

    def test_initial_loss_near_uniform(self, model):
        inputs, targets = batch(model, batch_size=4, seq=16)
        out = model.forward(inputs, targets)
        assert out.lm_loss == pytest.approx(np.log(model.config.vocab_size), rel=0.2)

    def test_expert_counts_shape(self, model):
        inputs, targets = batch(model)
        out = model.forward(inputs, targets)
        assert out.expert_counts.shape == (model.config.num_layers,
                                           model.config.num_experts)
        assert out.expert_counts.sum() == (model.config.num_layers
                                           * 2 * 8 * model.config.top_k)

    def test_forward_without_targets(self, model):
        inputs, _ = batch(model)
        out = model.forward(inputs)
        assert out.lm_loss == 0.0
        with pytest.raises(ValueError):
            model.backward(out)

    def test_rejects_1d_input(self, model):
        with pytest.raises(ValueError):
            model.forward(np.array([1, 2, 3]))

    def test_num_parameters_positive(self, model):
        assert model.num_parameters() > 100_000


class TestBackward:
    def test_all_parameters_receive_gradients(self, model):
        inputs, targets = batch(model, batch_size=4, seq=16, seed=3)
        model.zero_grad()
        out = model.forward(inputs, targets)
        model.backward(out)
        zero_grads = [name for name, p in model.named_parameters()
                      if np.abs(p.grad).sum() == 0]
        # Only rarely-routed experts may legitimately have zero gradients.
        assert all("experts" in name for name in zero_grads)

    def test_gradient_descent_reduces_loss(self, model):
        inputs, targets = batch(model, batch_size=4, seq=16, seed=4)
        out1 = model.forward(inputs, targets)
        model.zero_grad()
        model.backward(out1)
        lr = 0.05
        for param in model.parameters():
            param.value -= lr * param.grad
        out2 = model.forward(inputs, targets)
        assert out2.loss < out1.loss

    def test_aux_weight_changes_gradients(self):
        config = tiny_test_config()
        inputs = np.random.default_rng(5).integers(0, config.vocab_size, size=(2, 8))
        targets = np.random.default_rng(6).integers(0, config.vocab_size, size=(2, 8))
        grads = {}
        for weight in (0.0, 1.0):
            model = MoETransformer(config, aux_loss_weight=weight, seed=0)
            model.zero_grad()
            out = model.forward(inputs, targets)
            model.backward(out)
            gate_name = "blocks.0.moe.gate.weight"
            grads[weight] = dict(model.named_parameters())[gate_name].grad.copy()
        assert not np.allclose(grads[0.0], grads[1.0])


class TestRoutingExtraction:
    def test_routing_matrices_shape_and_conservation(self, model):
        inputs, targets = batch(model, batch_size=4, seq=8)
        out = model.forward(inputs, targets)
        routing = model.routing_matrices(out, num_devices=4)
        assert routing.shape == (model.config.num_layers, 4,
                                 model.config.num_experts)
        total_assignments = 4 * 8 * model.config.top_k
        assert routing.sum() == model.config.num_layers * total_assignments

    def test_routing_matrices_single_device(self, model):
        inputs, targets = batch(model)
        out = model.forward(inputs, targets)
        routing = model.routing_matrices(out, num_devices=1)
        assert np.array_equal(routing[:, 0, :], out.expert_counts)
