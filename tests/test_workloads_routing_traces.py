"""Tests for the routing-trace generators."""

import numpy as np
import pytest

from repro.workloads.routing_traces import (
    RoutingTrace,
    RoutingTraceConfig,
    SyntheticRoutingTraceGenerator,
    balanced_routing,
    routing_from_assignments,
)


def make_generator(**overrides):
    defaults = dict(num_devices=8, num_experts=8, num_layers=2,
                    tokens_per_device=1024, top_k=2, seed=3)
    defaults.update(overrides)
    return SyntheticRoutingTraceGenerator(RoutingTraceConfig(**defaults))


class TestTraceGeneration:
    def test_shape(self):
        trace = make_generator().generate(5)
        assert trace.routing.shape == (5, 2, 8, 8)

    def test_token_conservation(self):
        """Every device routes exactly tokens * top_k assignments per layer."""
        trace = make_generator().generate(3)
        per_device = trace.routing.sum(axis=3)
        assert np.all(per_device == 1024 * 2)

    def test_counts_non_negative(self):
        trace = make_generator().generate(3)
        assert np.all(trace.routing >= 0)

    def test_determinism_with_seed(self):
        t1 = make_generator(seed=42).generate(4)
        t2 = make_generator(seed=42).generate(4)
        assert np.array_equal(t1.routing, t2.routing)

    def test_different_seeds_differ(self):
        t1 = make_generator(seed=1).generate(4)
        t2 = make_generator(seed=2).generate(4)
        assert not np.array_equal(t1.routing, t2.routing)

    def test_skew_controls_imbalance(self):
        skewed = make_generator(skew=0.2, seed=5).generate(8)
        balanced = make_generator(skew=50.0, seed=5).generate(8)
        assert skewed.mean_imbalance() > balanced.mean_imbalance()

    def test_imbalance_exceeds_one_for_skewed_traces(self):
        trace = make_generator(skew=0.3).generate(10)
        assert trace.mean_imbalance() > 1.3

    def test_drift_changes_distribution_over_time(self):
        trace = make_generator(drift=0.5, churn_prob=0.0, seed=9).generate(50)
        first = trace.expert_loads(0, 0) / trace.expert_loads(0, 0).sum()
        last = trace.expert_loads(49, 0) / trace.expert_loads(49, 0).sum()
        assert np.abs(first - last).sum() > 0.05

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            RoutingTraceConfig(num_devices=0, num_experts=8)
        with pytest.raises(ValueError):
            RoutingTraceConfig(num_devices=4, num_experts=8, top_k=9)
        with pytest.raises(ValueError):
            RoutingTraceConfig(num_devices=4, num_experts=8, skew=-1.0)

    def test_generate_requires_positive_iterations(self):
        with pytest.raises(ValueError):
            make_generator().generate(0)


class TestRoutingTrace:
    def test_accessors(self):
        trace = make_generator().generate(4)
        assert trace.num_iterations == 4
        assert trace.num_layers == 2
        assert trace.num_devices == 8
        assert trace.num_experts == 8
        assert trace.iteration(1).shape == (2, 8, 8)
        assert trace.layer(1, 0).shape == (8, 8)

    def test_iter_layers_count(self):
        trace = make_generator().generate(3)
        assert sum(1 for _ in trace.iter_layers()) == 6

    def test_slice_iterations(self):
        trace = make_generator().generate(6)
        sliced = trace.slice_iterations(2, 5)
        assert sliced.num_iterations == 3
        assert np.array_equal(sliced.routing[0], trace.routing[2])

    def test_remap_devices_preserves_expert_totals(self):
        trace = make_generator().generate(2)
        remapped = trace.remap_devices(16)
        assert remapped.num_devices == 16
        for it in range(2):
            for layer in range(2):
                assert np.array_equal(
                    remapped.routing[it, layer].sum(axis=0),
                    trace.routing[it, layer].sum(axis=0))

    def test_remap_devices_rejects_bad_count(self):
        trace = make_generator().generate(1)
        with pytest.raises(ValueError):
            trace.remap_devices(0)

    def test_negative_counts_rejected(self):
        routing = -np.ones((1, 1, 2, 2), dtype=np.int64)
        with pytest.raises(ValueError):
            RoutingTrace(routing=routing, top_k=1, tokens_per_device=1)

    def test_wrong_rank_rejected(self):
        with pytest.raises(ValueError):
            RoutingTrace(routing=np.zeros((2, 2, 2)), top_k=1, tokens_per_device=1)


class TestBalancedRouting:
    def test_perfectly_balanced(self):
        trace = balanced_routing(num_devices=4, num_experts=8,
                                 tokens_per_device=1024, top_k=2,
                                 num_layers=2, num_iterations=3)
        assert trace.mean_imbalance() == pytest.approx(1.0, abs=1e-6)

    def test_token_conservation_with_remainder(self):
        trace = balanced_routing(num_devices=2, num_experts=3,
                                 tokens_per_device=100, top_k=1)
        assert np.all(trace.routing.sum(axis=3) == 100)


class TestRoutingFromAssignments:
    def test_counts(self):
        assignments = [np.array([[0, 1], [1, 1]]), np.array([[2, 2], [0, 2]])]
        routing = routing_from_assignments(assignments, num_experts=3)
        assert routing.shape == (2, 3)
        assert routing[0].tolist() == [1, 3, 0]
        assert routing[1].tolist() == [1, 0, 3]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            routing_from_assignments([np.array([5])], num_experts=3)

    def test_empty_assignment(self):
        routing = routing_from_assignments([np.array([], dtype=int)], num_experts=4)
        assert routing.sum() == 0
