"""Tests for the greedy expert relocation (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.relocation import relocate_experts
from repro.core.replica_allocation import (
    allocate_replicas_priority_queue,
    even_replicas,
)


class TestRelocation:
    def test_layout_is_valid(self, small_topology):
        loads = np.array([100.0, 80, 60, 40, 30, 20, 10, 5])
        replicas = even_replicas(8, 8, 2)
        layout = relocate_experts(replicas, loads, small_topology, capacity=2)
        layout.validate(require_full_capacity=True)
        assert np.array_equal(layout.replicas_per_expert(), replicas)

    def test_respects_capacity(self, small_topology):
        loads = np.linspace(100, 10, 8)
        replicas = allocate_replicas_priority_queue(loads, 8, 8, 2)
        layout = relocate_experts(replicas, loads, small_topology, capacity=2)
        assert np.all(layout.assignment.sum(axis=1) <= 2)

    def test_balances_device_loads(self, small_topology):
        """Greedy placement should distribute per-replica load fairly evenly."""
        rng = np.random.default_rng(1)
        loads = rng.gamma(0.5, 100.0, size=8)
        replicas = allocate_replicas_priority_queue(loads, 8, 8, 2)
        layout = relocate_experts(replicas, loads, small_topology, capacity=2)
        per_replica = loads / replicas
        device_loads = layout.assignment @ per_replica
        assert device_loads.max() <= 2.0 * device_loads.mean() + 1e-9

    def test_replicas_spread_across_nodes(self, small_topology):
        """An expert with one replica per node should not stack on one node."""
        loads = np.array([1000.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0])
        replicas = np.array([2, 1, 1, 1, 1, 1, 1, 1])
        # pad replicas to fill capacity 2 per device: total slots 16, used 9.
        layout = relocate_experts(replicas, loads, small_topology, capacity=2)
        hot_devices = layout.devices_hosting(0)
        nodes = {small_topology.node(d) for d in hot_devices}
        assert len(nodes) == 2

    def test_highest_load_placed_first_on_least_loaded_device(self, small_topology):
        loads = np.array([100.0, 1.0])
        replicas = np.array([1, 1])
        layout = relocate_experts(replicas, loads, small_topology, capacity=1)
        # Both experts placed somewhere, on different devices.
        assert layout.replicas_per_expert().tolist() == [1, 1]
        assert len(set(layout.devices_hosting(0) + layout.devices_hosting(1))) == 2

    def test_full_cluster_capacity(self, small_topology):
        loads = np.arange(1, 17, dtype=float)
        replicas = np.ones(16, dtype=np.int64)
        layout = relocate_experts(replicas, loads, small_topology, capacity=2)
        layout.validate(require_full_capacity=True)

    def test_too_many_replicas_rejected(self, small_topology):
        replicas = np.full(8, 3, dtype=np.int64)  # 24 > 16 slots
        with pytest.raises(ValueError):
            relocate_experts(replicas, np.ones(8), small_topology, capacity=2)

    def test_zero_replica_rejected(self, small_topology):
        replicas = np.array([0, 2, 2, 2, 2, 2, 2, 2])
        with pytest.raises(ValueError):
            relocate_experts(replicas, np.ones(8), small_topology, capacity=2)

    def test_mismatched_shapes_rejected(self, small_topology):
        with pytest.raises(ValueError):
            relocate_experts(np.ones(8, dtype=np.int64), np.ones(4),
                             small_topology, capacity=2)

    def test_deterministic(self, small_topology):
        loads = np.array([50.0, 40, 30, 20, 10, 5, 2, 1])
        replicas = even_replicas(8, 8, 2)
        a = relocate_experts(replicas, loads, small_topology, capacity=2)
        b = relocate_experts(replicas, loads, small_topology, capacity=2)
        assert a == b

    def test_single_node_topology(self, single_node_topology):
        loads = np.array([10.0, 5.0, 2.0, 1.0])
        replicas = even_replicas(4, 4, 2)
        layout = relocate_experts(replicas, loads, single_node_topology, capacity=2)
        layout.validate(require_full_capacity=True)
