"""Tests for the serving tier: coalescing, cache semantics, HTTP daemon."""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from concurrent.futures import Future
from pathlib import Path

import pytest

from repro.api import (
    ClusterSpec,
    ExperimentRunner,
    ExperimentSpec,
    WorkloadSpec,
)
from repro.serve import (
    FleetQueueExecutor,
    InFlightTable,
    PoolExecutor,
    ReproServer,
    ServeApp,
    ServeClient,
    ServeError,
    ServeUnavailable,
    parse_submission,
)
from repro.fleet import FleetWorker, WorkQueue
from repro.store import ResultStore, run_id_for, spec_fingerprint
from repro.study import StudyAxes, StudySpec
from repro.study.runner import split_resumable_cells, study_run_tags


def serve_spec(name="serve-test", **overrides) -> ExperimentSpec:
    defaults = dict(
        name=name,
        cluster=ClusterSpec(num_nodes=1, devices_per_node=4),
        workload=WorkloadSpec(tokens_per_device=1024, layers=1,
                              iterations=2, warmup=1, seed=7),
        systems=("laer",),
        reference="laer",
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def tiny_study(name="serve-study") -> StudySpec:
    return StudySpec(name=name, base=serve_spec(),
                     axes=StudyAxes(cluster_sizes=(4, 8)))


@pytest.fixture
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "store")


# ----------------------------------------------------------------------
# In-flight table
# ----------------------------------------------------------------------
class TestInFlightTable:
    def test_first_caller_leads_rest_join(self):
        table = InFlightTable()
        leading, entry = table.join_or_lead("fp", "run-1")
        assert leading and entry.followers == 0
        again, joined = table.join_or_lead("fp", "run-other")
        assert not again
        assert joined is entry
        assert joined.run_id == "run-1"  # the leader's id wins
        assert (table.led, table.coalesced) == (1, 1)
        assert len(table) == 1

    def test_resolve_wakes_followers_with_result(self):
        table = InFlightTable()
        _, entry = table.join_or_lead("fp", "run-1")
        table.join_or_lead("fp", "run-1")
        table.resolve("fp", result="run-1")
        assert entry.future.result(timeout=1) == "run-1"
        assert len(table) == 0

    def test_resolve_pops_before_resolving(self):
        """A request arriving after resolution must start a fresh entry."""
        table = InFlightTable()
        table.join_or_lead("fp", "run-1")
        table.resolve("fp", result="run-1")
        leading, entry = table.join_or_lead("fp", "run-2")
        assert leading  # not coalesced onto the dead entry
        assert not entry.future.done()

    def test_error_resolution_propagates(self):
        table = InFlightTable()
        _, entry = table.join_or_lead("fp", "run-1")
        table.resolve("fp", error=RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            entry.future.result(timeout=1)

    def test_resolve_unknown_fingerprint_is_noop(self):
        assert InFlightTable().resolve("nope", result="x") is None

    def test_entries_snapshot_oldest_first(self):
        table = InFlightTable()
        _, first = table.join_or_lead("a", "run-a")
        first.created_at -= 10
        table.join_or_lead("b", "run-b")
        assert [e.fingerprint for e in table.entries()] == ["a", "b"]
        assert table.get("a") is first
        assert table.get("zz") is None


# ----------------------------------------------------------------------
# Payload parsing
# ----------------------------------------------------------------------
class TestParseSubmission:
    def test_enveloped_spec(self):
        spec, study = parse_submission({"spec": serve_spec().to_dict()})
        assert study is None
        assert spec == serve_spec()

    def test_bare_spec_dict(self):
        spec, study = parse_submission(serve_spec().to_dict())
        assert study is None and spec == serve_spec()

    def test_enveloped_and_bare_study(self):
        for payload in (
                {"study": tiny_study().to_dict()}, tiny_study().to_dict()):
            spec, study = parse_submission(payload)
            assert spec is None
            assert study.name == "serve-study"

    def test_rejects_unrecognized_body(self):
        with pytest.raises(ServeError) as info:
            parse_submission({"nonsense": 1})
        assert info.value.status == 400

    def test_rejects_invalid_spec(self):
        with pytest.raises(ServeError) as info:
            parse_submission({"spec": {"workload": {"no_such_field": 1}}})
        assert info.value.status == 400

    def test_rejects_non_object(self):
        with pytest.raises(ServeError):
            parse_submission(["not", "a", "dict"])
        with pytest.raises(ServeError):
            parse_submission({"spec": "not-a-dict"})


# ----------------------------------------------------------------------
# ServeApp core semantics (no sockets)
# ----------------------------------------------------------------------
class GatedExecutor:
    """Pool-like executor whose executions block on an event -- lets tests
    hold N requests provably concurrent before any execution finishes."""

    kind = "gated"

    def __init__(self, store: ResultStore):
        self.store = store
        self.release = threading.Event()
        self.executed = 0
        self.submitted = 0
        self._lock = threading.Lock()

    def submit(self, spec, tags=()):
        with self._lock:
            self.submitted += 1
        future = Future()

        def run():
            assert self.release.wait(20), "test never released the gate"
            try:
                result = ExperimentRunner(parallel=False).run(spec)
                stored = self.store.put(result, tags=tuple(tags))
            except Exception as error:
                future.set_exception(error)
                return
            with self._lock:
                self.executed += 1
            future.set_result(stored)

        threading.Thread(target=run, daemon=True).start()
        return future

    def in_flight(self):
        return 0

    def shutdown(self, wait=True):
        self.release.set()


class TestServeApp:
    def test_miss_then_hit(self, store):
        app = ServeApp(store)
        try:
            status, body = app.submit_spec(serve_spec())
            assert status == 200
            assert (body["status"], body["cache"]) == ("done", "miss")
            status, body2 = app.submit_spec(serve_spec())
            assert (status, body2["cache"]) == (200, "hit")
            assert body2["run_id"] == body["run_id"]
            assert body2["entry"]["run_id"] == body["run_id"]
            assert app.executor.executed == 1
            assert len(store) == 1
        finally:
            app.drain()

    def test_tag_only_difference_is_cache_hit(self, store):
        """A spec differing only in tags (client or explicit) must not
        re-run: tags are storage metadata, not part of the cache key."""
        app = ServeApp(store)
        try:
            _, body = app.submit_spec(serve_spec(), tags=("alpha",),
                                      client="alice")
            assert body["cache"] == "miss"
            _, body2 = app.submit_spec(serve_spec(), tags=("beta",),
                                       client="bob")
            assert body2["cache"] == "hit"
            assert body2["run_id"] == body["run_id"]
            assert app.executor.executed == 1
            assert len(store) == 1
            # The stored run carries the *first* requester's tags.
            stored = store.get(body["run_id"])
            assert stored.tags == ("alpha", "client:alice")
        finally:
            app.drain()

    def test_concurrent_identical_submissions_execute_once(self, store):
        """The acceptance-criteria test: N provably-concurrent identical
        submissions cause exactly one execution and one stored run."""
        gate = GatedExecutor(store)
        app = ServeApp(store, executor=gate)
        spec = serve_spec(name="coalesce-me")
        n = 8
        replies = [None] * n

        def submit(i):
            replies[i] = app.submit_spec(spec, client=f"client-{i}")

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(n)]
        for thread in threads:
            thread.start()
        # Wait until every request has passed join_or_lead (exactly one
        # leader scheduled an execution; everyone else joined it), *then*
        # let the execution finish.
        deadline = time.time() + 10
        while app.status()["requests"]["requests"] < n:
            assert time.time() < deadline
            time.sleep(0.005)
        assert gate.submitted == 1
        gate.release.set()
        for thread in threads:
            thread.join(timeout=20)
        statuses = [reply[0] for reply in replies]
        caches = sorted(body["cache"] for _, body in replies)
        assert statuses == [200] * n
        assert caches == ["coalesced"] * (n - 1) + ["miss"]
        assert gate.executed == 1
        assert len(store) == 1  # the store gained exactly one run
        run_ids = {body["run_id"] for _, body in replies}
        assert len(run_ids) == 1

    def test_execution_error_propagates_and_clears_entry(self, store):
        class FailingExecutor:
            kind = "failing"
            executed = 0

            def submit(self, spec, tags=()):
                future = Future()
                future.set_exception(RuntimeError("device on fire"))
                return future

            def in_flight(self):
                return 0

            def shutdown(self, wait=True):
                pass

        app = ServeApp(store, executor=FailingExecutor())
        status, body = app.submit_spec(serve_spec())
        assert status == 500
        assert body["status"] == "failed"
        assert "device on fire" in body["error"]
        assert len(app.inflight) == 0  # entry cleared: retries can lead
        assert app.status()["requests"]["errors"] == 1
        assert app.status()["recent_errors"]

    def test_no_wait_schedules_and_store_catches_up(self, store):
        app = ServeApp(store)
        try:
            status, body = app.submit_spec(serve_spec(), wait=False)
            assert status == 202
            assert body["status"] == "scheduled"
            expected = body["run_id"]
            deadline = time.time() + 20
            while expected not in store:
                assert time.time() < deadline
                time.sleep(0.01)
        finally:
            app.drain()
        assert store.get(expected).run_id == expected

    def test_study_submission_and_resume_compatibility(self, store):
        app = ServeApp(store)
        try:
            study = tiny_study()
            status, body = app.submit_study(study)
            assert status == 200
            assert body["status"] == "done"
            assert body["cache"] == {"hit": 0, "coalesced": 0, "miss": 2}
            assert len(store) == 2
            # Identical study again: answered entirely from the cache.
            status, body2 = app.submit_study(study)
            assert status == 200
            assert body2["cache"]["miss"] == 0
            assert app.executor.executed == 2
            # The runs are stored under the StudyRunner's tag scheme, so
            # an offline study run over the same store resumes them all.
            pending, resumed = split_resumable_cells(
                study, store, tags=study_run_tags(study))
            assert pending == []
            assert len(resumed) == 2
        finally:
            app.drain()

    def test_drain_compacts_journal(self, store):
        app = ServeApp(store)
        app.submit_spec(serve_spec())
        assert store.journal_path.stat().st_size > 0
        app.drain()
        assert store.journal_path.stat().st_size == 0
        assert json.loads(store.index_path.read_text())["runs"]

    def test_seeded_fingerprint_map_hits_prior_runs(self, store):
        """Runs stored before the daemon existed (by a study, a fleet, a
        previous daemon) are cache hits even under unknown tags."""
        result = ExperimentRunner(parallel=False).run(serve_spec())
        store.put(result, tags=("study:old", "baseline"))
        app = ServeApp(store)
        status, body = app.submit_spec(serve_spec(), client="new-client")
        assert (status, body["cache"]) == (200, "hit")
        assert app.executor.executed == 0


class TestFleetExecutor:
    def test_miss_is_drained_by_attached_worker(self, store, tmp_path):
        queue = WorkQueue(tmp_path / "queue", lease_timeout=30.0)
        executor = FleetQueueExecutor(store, queue, poll_interval=0.05)
        app = ServeApp(store, executor=executor)
        status, body = app.submit_spec(serve_spec(), wait=False)
        assert status == 202
        assert queue.outstanding()  # the miss became a queued cell
        worker = FleetWorker(queue, store, worker_id="attached-1",
                             poll_interval=0.05)
        report = worker.run()
        assert report.executed  # the external worker simulated it
        deadline = time.time() + 10
        while body["run_id"] not in store:
            assert time.time() < deadline
            time.sleep(0.02)
        status, hot = app.submit_spec(serve_spec())
        assert (status, hot["cache"]) == (200, "hit")
        # The watcher thread notices the done record on its next poll.
        while executor.executed < 1:
            assert time.time() < deadline
            time.sleep(0.02)
        app.drain()

    def test_worker_failure_propagates(self, store, tmp_path):
        queue = WorkQueue(tmp_path / "queue", lease_timeout=30.0)
        executor = FleetQueueExecutor(store, queue, poll_interval=0.05)
        app = ServeApp(store, executor=executor)
        # An invalid scenario parameter makes the cell fail in the worker.
        bad = serve_spec(workload=WorkloadSpec(
            tokens_per_device=1024, layers=1, iterations=2, warmup=1,
            seed=7, params={"period": 1}, scenario="bursty-churn"))
        waiter = {}

        def submit():
            waiter["reply"] = app.submit_spec(bad, timeout=20)

        thread = threading.Thread(target=submit)
        thread.start()
        deadline = time.time() + 10
        while not queue.outstanding():  # wait for the miss to be enqueued
            assert time.time() < deadline
            time.sleep(0.02)
        worker = FleetWorker(queue, store, worker_id="attached-1",
                             poll_interval=0.05)
        worker.run()
        thread.join(timeout=20)
        status, body = waiter["reply"]
        assert status == 500
        assert body["status"] == "failed"
        app.drain()


# ----------------------------------------------------------------------
# HTTP daemon end to end
# ----------------------------------------------------------------------
class TestHTTPServer:
    def test_end_to_end_miss_hit_status_result(self, tmp_path):
        with ReproServer(tmp_path / "store", port=0) as server:
            client = ServeClient(server.address, client="pytest")
            cold = client.submit(serve_spec())
            assert cold.done and cold.cache == "miss"
            hot = client.submit(serve_spec())
            assert hot.done and hot.cache == "hit"
            assert hot.run_id == cold.run_id
            assert hot.entry["run_id"] == cold.run_id

            envelope = client.result(cold.run_id)
            assert envelope["run_id"] == cold.run_id
            assert "result" in envelope
            with pytest.raises(KeyError):
                client.result("no-such-run")

            status = client.status()
            assert status["requests"]["hits"] == 1
            assert status["requests"]["misses"] == 1
            assert status["executor"]["executed"] == 1
            client.close()

    def test_http_level_errors(self, tmp_path):
        with ReproServer(tmp_path / "store", port=0) as server:
            client = ServeClient(server.address)
            code, body = client._request("POST", "/run", {"nonsense": True})
            assert code == 400 and "error" in body
            code, body = client._request("GET", "/definitely-not-a-path")
            assert code == 404
            code, body = client._request("POST", "/run",
                                         {"spec": serve_spec().to_dict(),
                                          "tags": "not-a-list"})
            assert code == 400
            client.close()

    def test_concurrent_http_submissions_store_one_run(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with ReproServer(store, port=0) as server:
            n = 6
            barrier = threading.Barrier(n)
            replies = [None] * n

            def submit(i):
                client = ServeClient(server.address, client=f"c{i}")
                barrier.wait(timeout=10)
                replies[i] = client.submit(serve_spec(name="http-coalesce"))
                client.close()

            threads = [threading.Thread(target=submit, args=(i,))
                       for i in range(n)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert all(reply is not None and reply.done for reply in replies)
            assert len({reply.run_id for reply in replies}) == 1
            # Exactly one execution, no matter how the N requests raced
            # (late arrivals may read as store hits rather than coalesced).
            status = ServeClient(server.address).status()
            assert status["executor"]["executed"] == 1
        assert len(store) == 1

    def test_unix_socket_serving(self, tmp_path):
        sock = tmp_path / "serve.sock"
        with ReproServer(tmp_path / "store", unix_socket=sock) as server:
            assert server.url == f"unix:{sock}"
            client = ServeClient(f"unix:{sock}")
            assert client.wait_ready(timeout=10)["service"] == "repro-serve"
            reply = client.submit(serve_spec())
            assert reply.done and reply.cache == "miss"
            assert client.submit(serve_spec()).cache == "hit"
            client.close()
        assert not sock.exists()  # unlinked on close

    def test_graceful_close_drains_scheduled_work(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        server = ReproServer(store, port=0).start()
        client = ServeClient(server.address)
        reply = client.submit(serve_spec(), wait=False)
        assert reply.status in ("scheduled", "done")
        client.close()
        server.close()  # must block until the scheduled run landed
        assert reply.run_id in store
        assert store.journal_path.stat().st_size == 0

    def test_post_shutdown_stops_the_daemon(self, tmp_path):
        server = ReproServer(tmp_path / "store", port=0).start()
        client = ServeClient(server.address)
        client.wait_ready(timeout=10)
        assert client.shutdown().get("status") == "shutting-down"
        deadline = time.time() + 15
        while True:
            try:
                ServeClient(server.address, timeout=1).status()
            except Exception:
                break
            assert time.time() < deadline
            time.sleep(0.05)
        server.close()  # idempotent


# ----------------------------------------------------------------------
# Crash safety: SIGKILL mid-request leaves no torn store state
# ----------------------------------------------------------------------
class TestCrashSafety:
    def test_kill9_mid_request_leaves_store_consistent(self, tmp_path):
        store_root = tmp_path / "store"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parent.parent / "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--store", str(store_root), "--port", "0"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        try:
            line = proc.stdout.readline()
            assert "listening on http://" in line
            address = line.split("http://")[1].split()[0]
            client = ServeClient(address, timeout=30)
            # Warm run: completes, so the store holds one good envelope.
            quick = client.submit(serve_spec(name="pre-crash"))
            assert quick.done
            # Slow run: big enough that SIGKILL lands mid-execution.
            slow = serve_spec(name="crash-victim", workload=WorkloadSpec(
                tokens_per_device=8192, layers=2, iterations=60,
                warmup=1, seed=7))
            scheduled = client.submit(slow, wait=False)
            assert scheduled.status in ("scheduled", "done")
            time.sleep(0.3)  # let the execution get going
        finally:
            proc.kill()  # SIGKILL: no drain, no atexit, nothing
            proc.wait(timeout=15)

        # No torn state: every run file parses, the index view is
        # readable, and a rebuild from the run files agrees with it.
        store = ResultStore(store_root)
        for run_id in store.run_ids():
            envelope = store.get(run_id)  # raises on a torn file
            assert envelope.run_id == run_id
        readable = {entry.run_id for entry in store.entries()}
        assert quick.run_id in readable
        rebuilt = store.rebuild_index()
        assert rebuilt == len(store)

        # A fresh daemon on the same store finishes the interrupted work.
        app = ServeApp(store)
        try:
            status, body = app.submit_spec(slow, timeout=120)
            assert (status, body["status"]) == (200, "done")
            _, again = app.submit_spec(serve_spec(name="pre-crash"))
            assert again["cache"] == "hit"
        finally:
            app.drain()


# ----------------------------------------------------------------------
# Degradation: stuck queues, fallback, health, client retry
# ----------------------------------------------------------------------
class TestQueueStuckAndFallback:
    def test_stuck_queue_fails_the_future_with_queue_stuck(self, store,
                                                           tmp_path):
        from repro.serve import FleetQueueExecutor, QueueStuck

        executor = FleetQueueExecutor(
            store, WorkQueue(tmp_path / "queue", lease_timeout=0.3),
            poll_interval=0.05, stuck_timeout=0.3)
        try:
            future = executor.submit(serve_spec(name="stuck"))
            with pytest.raises(QueueStuck):
                future.result(timeout=10)
        finally:
            executor.shutdown()

    def test_fallback_executor_degrades_and_recovers_results(self, store,
                                                             tmp_path):
        from repro.chaos import CircuitBreaker
        from repro.serve import (
            FallbackExecutor,
            FleetQueueExecutor,
            PoolExecutor,
        )

        primary = FleetQueueExecutor(
            store, WorkQueue(tmp_path / "queue", lease_timeout=0.3),
            poll_interval=0.05, stuck_timeout=0.3)
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=3600.0)
        executor = FallbackExecutor(primary, PoolExecutor(store), breaker)
        try:
            first = executor.submit(serve_spec(name="deg-0")).result(
                timeout=30)
            assert first.run_id in store.run_ids()
            assert breaker.state == "open"
            # Breaker open: the second submission skips the queue entirely.
            executor.submit(serve_spec(name="deg-1")).result(timeout=30)
            assert executor.fell_back == 2
            health = executor.health()
            assert health["degraded"] is True
            assert health["fallback"]["ok"] is True
        finally:
            executor.shutdown()
        assert len(store) == 2

    def test_health_endpoint_over_http(self, tmp_path):
        with ReproServer(tmp_path / "store", port=0) as server:
            client = ServeClient(server.address)
            try:
                status, body = client.health()
            finally:
                client.close()
        assert status == 200
        assert body["status"] == "ok"
        assert body["store"]["ok"] is True
        assert body["executor"]["kind"] == "pool"

    def test_client_retry_rides_out_injected_drops(self, tmp_path):
        from repro.chaos import (
            FaultInjector,
            FaultPlan,
            FaultSpec,
            RetryPolicy,
            install,
            uninstall,
        )

        with ReproServer(tmp_path / "store", port=0) as server:
            client = ServeClient(
                server.address, client="retry-test",
                retry=RetryPolicy(retries=4, base_delay_s=0.01,
                                  max_delay_s=0.05, seed=0))
            client.wait_ready()
            install(FaultInjector(FaultPlan(name="drops", faults=(
                FaultSpec(point="serve.client-request", kind="drop",
                          at=1, times=2),))))
            try:
                reply = client.submit(serve_spec(name="dropped"))
            finally:
                uninstall()
                client.close()
            assert reply.done

    def test_client_without_retry_still_fails_fast(self):
        client = ServeClient("127.0.0.1:1")
        with pytest.raises(ServeUnavailable):
            client.status()
