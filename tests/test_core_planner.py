"""Tests for the load-balancing planner (Fig. 3 / Fig. 7 workflow)."""

import numpy as np
import pytest

from repro.core.layout_tuner import TunerConfig
from repro.core.planner import IterationPlan, LoadBalancingPlanner, PlannerConfig
from repro.workloads.routing_traces import RoutingTraceConfig, SyntheticRoutingTraceGenerator


@pytest.fixture
def planner(small_topology, small_cost_model):
    return LoadBalancingPlanner(small_topology, small_cost_model, num_experts=8,
                                config=PlannerConfig(capacity=2))


def make_trace(iterations=5, seed=0, layers=2):
    generator = SyntheticRoutingTraceGenerator(RoutingTraceConfig(
        num_devices=8, num_experts=8, num_layers=layers, tokens_per_device=2048,
        top_k=2, skew=0.35, seed=seed))
    return generator.generate(iterations)


class TestPlannerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            PlannerConfig(capacity=0)
        with pytest.raises(ValueError):
            PlannerConfig(capacity=2, history_length=0)
        with pytest.raises(ValueError):
            PlannerConfig(capacity=2, ema_decay=0.0)


class TestHistory:
    def test_observe_and_predict_latest(self, planner):
        routing = np.full((8, 8), 10, dtype=np.int64)
        planner.observe(0, routing)
        predicted = planner.predicted_routing(0)
        assert np.array_equal(predicted, routing)

    def test_no_history_returns_none(self, planner):
        assert planner.predicted_routing(3) is None

    def test_history_length_bounded(self, small_topology, small_cost_model):
        planner = LoadBalancingPlanner(
            small_topology, small_cost_model, 8,
            PlannerConfig(capacity=2, history_length=2))
        for value in range(5):
            planner.observe(0, np.full((8, 8), value, dtype=np.int64))
        assert len(planner._history[0]) == 2

    def test_ema_prediction_blends_history(self, small_topology, small_cost_model):
        planner = LoadBalancingPlanner(
            small_topology, small_cost_model, 8,
            PlannerConfig(capacity=2, ema_decay=0.5))
        planner.observe(0, np.zeros((8, 8), dtype=np.int64))
        planner.observe(0, np.full((8, 8), 10, dtype=np.int64))
        predicted = planner.predicted_routing(0)
        assert 0 < predicted[0, 0] < 10

    def test_observe_wrong_shape(self, planner):
        with pytest.raises(ValueError):
            planner.observe(0, np.zeros((4, 8), dtype=np.int64))


class TestLayoutTuning:
    def test_fallback_before_history(self, planner):
        layout = planner.current_layout(0)
        layout.validate()
        assert layout.num_experts == 8

    def test_tune_layout_uses_history(self, planner):
        trace = make_trace()
        planner.observe(0, trace.layer(0, 0))
        layout = planner.tune_layout(0)
        layout.validate()
        assert planner.current_layout(0) == layout

    def test_fallback_for_non_divisible_expert_count(self, small_topology,
                                                     small_cost_model):
        planner = LoadBalancingPlanner(small_topology, small_cost_model,
                                       num_experts=6,
                                       config=PlannerConfig(capacity=2))
        layout = planner.current_layout(0)
        layout.validate()


class TestPlanIteration:
    def test_plans_are_valid(self, planner, small_cost_model):
        trace = make_trace()
        plans = planner.plan_iteration(trace.iteration(0))
        assert len(plans) == trace.num_layers
        for layer, plan in enumerate(plans):
            assert isinstance(plan, IterationPlan)
            small_cost_model.check_constraints(plan.layout, plan.routing_plan,
                                               trace.layer(0, layer))
            assert not plan.planned_from_history  # first iteration: fallback

    def test_second_iteration_uses_tuned_layouts(self, planner):
        trace = make_trace()
        planner.plan_iteration(trace.iteration(0))
        plans = planner.plan_iteration(trace.iteration(1))
        assert all(plan.planned_from_history for plan in plans)

    def test_adaptation_improves_balance(self, planner):
        """After warm-up the planner should track the skewed distribution."""
        trace = make_trace(iterations=6, seed=4)
        first = planner.plan_iteration(trace.iteration(0))
        later = None
        for it in range(1, 6):
            later = planner.plan_iteration(trace.iteration(it))
        ideal = trace.layer(5, 0).sum() / 8
        assert later[0].cost.max_tokens < first[0].cost.max_tokens
        assert later[0].cost.max_tokens <= 1.6 * ideal

    def test_reset_clears_state(self, planner):
        trace = make_trace()
        planner.plan_iteration(trace.iteration(0))
        planner.reset()
        plans = planner.plan_iteration(trace.iteration(1))
        assert all(not plan.planned_from_history for plan in plans)

    def test_wrong_rank_input(self, planner):
        with pytest.raises(ValueError):
            planner.plan_iteration(np.zeros((8, 8), dtype=np.int64))

    def test_dispatch_respects_given_layout(self, planner, small_topology):
        trace = make_trace()
        layout = planner.current_layout(0)
        plan = planner.dispatch(trace.layer(0, 0), layout)
        assert np.array_equal(plan.sum(axis=2), trace.layer(0, 0))
