"""Tests for the load-balancing policies of the compared systems."""

import numpy as np
import pytest

from repro.baselines import (
    FasterMoEPolicy,
    FlexMoEPolicy,
    LAERPolicy,
    OracleBalancedPolicy,
    ProphetPolicy,
    SmartMoEPolicy,
    StaticEPPolicy,
)
from repro.baselines.static_ep import ep_group_route
from repro.core.cost_model import MoECostModel
from repro.workloads.model_configs import get_model_config
from repro.workloads.routing_traces import RoutingTraceConfig, SyntheticRoutingTraceGenerator

EXPERT_BYTES = float(get_model_config("mixtral-8x7b-e8k2").expert_param_bytes)


def make_trace(iterations=6, seed=0, devices=8, experts=8):
    generator = SyntheticRoutingTraceGenerator(RoutingTraceConfig(
        num_devices=devices, num_experts=experts, num_layers=2,
        tokens_per_device=2048, top_k=2, skew=0.35, seed=seed))
    return generator.generate(iterations)


def check_decision(decision, routing):
    """Every policy decision must satisfy the planner constraints."""
    decision.layout.validate()
    assert np.array_equal(decision.routing_plan.sum(axis=2), routing)
    hosted = decision.layout.assignment.T > 0
    received = decision.routing_plan.sum(axis=0)
    assert np.all(received[~hosted] == 0)
    assert decision.relayout_bytes_exposed >= 0
    assert decision.grad_sync_extra_bytes >= 0


def max_relative_tokens(decision):
    tokens = decision.routing_plan.sum(axis=(0, 1))
    return tokens.max() / (decision.routing_plan.sum() / tokens.shape[0])


class TestEPGroupRoute:
    def test_routes_to_owner_in_group(self):
        routing = np.full((8, 8), 10, dtype=np.int64)
        plan = ep_group_route(routing, capacity=2)
        # Sender 0 belongs to the first row of P_ep=4 devices; expert 5 owner
        # is device 2 of that row.
        assert plan[0, 5, 2] == 10
        # Sender 5 belongs to the second row (devices 4..7).
        assert plan[5, 5, 6] == 10

    def test_conservation(self):
        rng = np.random.default_rng(0)
        routing = rng.integers(0, 50, size=(8, 8)).astype(np.int64)
        plan = ep_group_route(routing, capacity=2)
        assert np.array_equal(plan.sum(axis=2), routing)

    def test_validation(self):
        with pytest.raises(ValueError):
            ep_group_route(np.zeros((8, 7), dtype=np.int64), capacity=2)
        with pytest.raises(ValueError):
            ep_group_route(np.zeros((6, 8), dtype=np.int64), capacity=2)


class TestStaticEP:
    def test_decisions_valid_and_static(self, small_topology):
        policy = StaticEPPolicy(small_topology, 8, 2, EXPERT_BYTES)
        trace = make_trace()
        first = policy.decide_iteration(trace.iteration(0))
        second = policy.decide_iteration(trace.iteration(1))
        for layer in range(2):
            check_decision(first[layer], trace.layer(0, layer))
            assert first[layer].layout == second[layer].layout
            assert first[layer].relayout_bytes_exposed == 0

    def test_suffers_from_imbalance(self, small_topology):
        policy = StaticEPPolicy(small_topology, 8, 2, EXPERT_BYTES)
        trace = make_trace(seed=5)
        decisions = policy.decide_iteration(trace.iteration(0))
        assert max_relative_tokens(decisions[0]) > 1.3


class TestFasterMoE:
    def test_shadows_hot_experts_after_first_iteration(self, small_topology):
        policy = FasterMoEPolicy(small_topology, 8, 2, EXPERT_BYTES,
                                 max_shadow_experts=2)
        trace = make_trace(seed=7)
        policy.decide_iteration(trace.iteration(0))
        decisions = policy.decide_iteration(trace.iteration(1))
        shadowed = decisions[0].metadata["shadow_experts"]
        assert len(shadowed) <= 2
        if shadowed:
            assert decisions[0].relayout_bytes_exposed > 0
            assert decisions[0].grad_sync_extra_bytes > 0
        for layer in range(2):
            check_decision(decisions[layer], trace.layer(1, layer))

    def test_budget_respected(self, small_topology):
        policy = FasterMoEPolicy(small_topology, 8, 2, EXPERT_BYTES,
                                 max_shadow_experts=1)
        trace = make_trace(seed=8)
        policy.decide_iteration(trace.iteration(0))
        decisions = policy.decide_iteration(trace.iteration(1))
        assert len(decisions[0].metadata["shadow_experts"]) <= 1

    def test_validation(self, small_topology):
        with pytest.raises(ValueError):
            FasterMoEPolicy(small_topology, 8, 2, EXPERT_BYTES, hot_threshold=0.5)


class TestSmartMoE:
    def test_relocates_only_at_interval(self, small_topology):
        policy = SmartMoEPolicy(small_topology, 8, 2, EXPERT_BYTES,
                                relocation_interval=3)
        trace = make_trace(iterations=8, seed=9)
        migrations = []
        for it in range(7):
            decisions = policy.decide_iteration(trace.iteration(it))
            for layer, decision in enumerate(decisions):
                check_decision(decision, trace.layer(it, layer))
            migrations.append(decisions[0].relayout_bytes_exposed)
        # Migration cost can only appear on multiples of the interval.
        for it, cost in enumerate(migrations):
            if it % 3 != 0 or it == 0:
                assert cost == 0.0

    def test_migration_cost_uses_state_multiplier(self, small_topology):
        policy = SmartMoEPolicy(small_topology, 8, 2, EXPERT_BYTES,
                                relocation_interval=1, state_multiplier=6.0)
        trace = make_trace(iterations=4, seed=10)
        policy.decide_iteration(trace.iteration(0))
        decisions = policy.decide_iteration(trace.iteration(1))
        if decisions[0].metadata["relocated"]:
            assert decisions[0].relayout_bytes_exposed % (EXPERT_BYTES * 6.0) == 0


class TestProphet:
    def test_decisions_valid(self, small_topology):
        policy = ProphetPolicy(small_topology, 8, 2, EXPERT_BYTES,
                               adjustment_interval=2)
        trace = make_trace(iterations=5, seed=11)
        for it in range(5):
            decisions = policy.decide_iteration(trace.iteration(it))
            for layer, decision in enumerate(decisions):
                check_decision(decision, trace.layer(it, layer))

    def test_replication_budget(self, small_topology):
        policy = ProphetPolicy(small_topology, 8, 2, EXPERT_BYTES,
                               adjustment_interval=1, replication_budget=2)
        trace = make_trace(iterations=3, seed=12)
        policy.decide_iteration(trace.iteration(0))
        decisions = policy.decide_iteration(trace.iteration(1))
        extra = decisions[0].layout.replicas_per_expert().sum() - 8
        assert extra <= 2


class TestFlexMoE:
    def test_bounded_adjustments(self, small_topology):
        policy = FlexMoEPolicy(small_topology, 8, 2, EXPERT_BYTES,
                               max_adjustments_per_iteration=1)
        trace = make_trace(iterations=5, seed=13)
        previous_layout = None
        for it in range(5):
            decisions = policy.decide_iteration(trace.iteration(it))
            for layer, decision in enumerate(decisions):
                check_decision(decision, trace.layer(it, layer))
            if previous_layout is not None:
                assert decisions[0].layout.difference(previous_layout) <= 1
            previous_layout = decisions[0].layout

    def test_adapts_towards_balance(self, small_topology):
        policy = FlexMoEPolicy(small_topology, 8, 2, EXPERT_BYTES,
                               max_adjustments_per_iteration=2)
        trace = make_trace(iterations=10, seed=14)
        first = policy.decide_iteration(trace.iteration(0))
        last = None
        for it in range(1, 10):
            last = policy.decide_iteration(trace.iteration(it))
        assert max_relative_tokens(last[0]) < max_relative_tokens(first[0]) + 0.2

    def test_migration_charged_only_when_enabled(self, small_topology):
        trace = make_trace(iterations=3, seed=15)
        free = FlexMoEPolicy(small_topology, 8, 2, EXPERT_BYTES,
                             charge_migration=False)
        charged = FlexMoEPolicy(small_topology, 8, 2, EXPERT_BYTES,
                                charge_migration=True)
        for policy in (free, charged):
            policy.decide_iteration(trace.iteration(0))
        free_dec = free.decide_iteration(trace.iteration(1))
        charged_dec = charged.decide_iteration(trace.iteration(1))
        assert free_dec[0].relayout_bytes_exposed == 0.0
        if charged_dec[0].metadata["adjustments"]:
            assert charged_dec[0].relayout_bytes_exposed > 0.0


class TestLAERAndOracle:
    def make_cost_model(self, topology):
        return MoECostModel.from_model_config(
            get_model_config("mixtral-8x7b-e8k2"), topology)

    def test_laer_balances_better_than_static(self, small_topology):
        cost_model = self.make_cost_model(small_topology)
        laer = LAERPolicy(small_topology, 8, 2, EXPERT_BYTES, cost_model)
        static = StaticEPPolicy(small_topology, 8, 2, EXPERT_BYTES)
        trace = make_trace(iterations=6, seed=16)
        laer_last = static_last = None
        for it in range(6):
            laer_last = laer.decide_iteration(trace.iteration(it))
            static_last = static.decide_iteration(trace.iteration(it))
        assert (max_relative_tokens(laer_last[0])
                < max_relative_tokens(static_last[0]))
        assert laer_last[0].relayout_bytes_exposed == 0.0

    def test_laer_decisions_valid(self, small_topology):
        cost_model = self.make_cost_model(small_topology)
        policy = LAERPolicy(small_topology, 8, 2, EXPERT_BYTES, cost_model)
        trace = make_trace(iterations=3, seed=17)
        for it in range(3):
            decisions = policy.decide_iteration(trace.iteration(it))
            for layer, decision in enumerate(decisions):
                check_decision(decision, trace.layer(it, layer))

    def test_oracle_at_least_as_balanced_as_laer(self, small_topology):
        cost_model = self.make_cost_model(small_topology)
        oracle = OracleBalancedPolicy(small_topology, 8, 2, EXPERT_BYTES, cost_model)
        laer = LAERPolicy(small_topology, 8, 2, EXPERT_BYTES, cost_model)
        trace = make_trace(iterations=5, seed=18)
        oracle_vals, laer_vals = [], []
        for it in range(5):
            oracle_vals.append(max_relative_tokens(
                oracle.decide_iteration(trace.iteration(it))[0]))
            laer_vals.append(max_relative_tokens(
                laer.decide_iteration(trace.iteration(it))[0]))
        assert np.mean(oracle_vals) <= np.mean(laer_vals) + 0.05

    def test_reset(self, small_topology):
        cost_model = self.make_cost_model(small_topology)
        policy = LAERPolicy(small_topology, 8, 2, EXPERT_BYTES, cost_model)
        trace = make_trace(iterations=2, seed=19)
        policy.decide_iteration(trace.iteration(0))
        assert policy.iteration == 1
        policy.reset()
        assert policy.iteration == 0
