"""Tests for the SwiGLU expert."""

import numpy as np
import pytest

from repro.model.expert import SwiGLUExpert

from helpers import check_input_gradient, check_parameter_gradients


def make_expert(hidden=8, inter=12, seed=0):
    return SwiGLUExpert(hidden, inter, rng=np.random.default_rng(seed))


class TestForwardBackward:
    def test_output_shape(self):
        expert = make_expert()
        x = np.random.default_rng(0).normal(size=(5, 8))
        out, _ = expert.forward(x)
        assert out.shape == (5, 8)

    def test_parameter_gradients(self):
        rng = np.random.default_rng(1)
        expert = make_expert(seed=1)
        x = rng.normal(size=(4, 8))
        target = rng.normal(size=(4, 8))

        def loss_fn():
            out, _ = expert.forward(x)
            return float(np.sum((out - target) ** 2))

        def backward_fn():
            out, cache = expert.forward(x)
            expert.backward(2 * (out - target), cache)

        check_parameter_gradients(expert, loss_fn, backward_fn, max_elements=25)

    def test_input_gradient(self):
        rng = np.random.default_rng(2)
        expert = make_expert(seed=2)
        x = rng.normal(size=(4, 8))
        target = rng.normal(size=(4, 8))
        out, cache = expert.forward(x)
        grad_in = expert.backward(2 * (out - target), cache)

        def forward_loss(inp):
            out2, _ = expert.forward(inp)
            return float(np.sum((out2 - target) ** 2))

        check_input_gradient(forward_loss, grad_in, x)

    def test_flops_formula(self):
        expert = make_expert(hidden=8, inter=12)
        assert expert.flops_per_token() == 6 * 8 * 12


class TestFlattening:
    def test_flat_size(self):
        expert = make_expert(hidden=8, inter=12)
        assert expert.flatten_parameters().size == expert.flat_size == 3 * 8 * 12

    def test_flatten_roundtrip(self):
        expert = make_expert(seed=3)
        flat = expert.flatten_parameters()
        other = make_expert(seed=99)
        other.load_flat_parameters(flat)
        assert np.array_equal(other.flatten_parameters(), flat)
        x = np.random.default_rng(0).normal(size=(3, 8))
        out1, _ = expert.forward(x)
        out2, _ = other.forward(x)
        assert np.allclose(out1, out2)

    def test_flatten_gradients_match_parameters_order(self):
        expert = make_expert(seed=4)
        x = np.random.default_rng(1).normal(size=(3, 8))
        out, cache = expert.forward(x)
        expert.backward(np.ones_like(out), cache)
        flat_grads = expert.flatten_gradients()
        named = dict(expert.named_parameters())
        manual = np.concatenate([named[n].grad.reshape(-1)
                                 for n in expert.parameter_order()])
        assert np.array_equal(flat_grads, manual)

    def test_load_wrong_size_rejected(self):
        expert = make_expert()
        with pytest.raises(ValueError):
            expert.load_flat_parameters(np.zeros(10))

    def test_load_zeroes_gradients(self):
        expert = make_expert(seed=5)
        x = np.random.default_rng(2).normal(size=(2, 8))
        out, cache = expert.forward(x)
        expert.backward(np.ones_like(out), cache)
        expert.load_flat_parameters(expert.flatten_parameters())
        assert all(np.all(p.grad == 0) for p in expert.parameters())
