"""Tests for the FSEP executor: distributed MoE == single-device reference."""

import numpy as np
import pytest

from repro.cluster.topology import ClusterTopology
from repro.core.executor import FSEPExecutor
from repro.core.layout import ExpertLayout
from repro.core.layout_tuner import ExpertLayoutTuner
from repro.core.cost_model import MoECostModel
from repro.model.moe_layer import MoELayer
from repro.workloads.model_configs import tiny_test_config


@pytest.fixture
def moe_layer():
    return MoELayer(hidden_size=16, intermediate_size=32, num_experts=8,
                    top_k=2, rng=np.random.default_rng(0))


@pytest.fixture
def topology():
    return ClusterTopology(num_nodes=2, devices_per_node=2)


@pytest.fixture
def executor(moe_layer, topology):
    return FSEPExecutor(moe_layer, topology)


def custom_layout(num_devices=4, num_experts=8, capacity=2, seed=0):
    """A full-capacity layout covering all experts with some replication."""
    rng = np.random.default_rng(seed)
    assignment = np.zeros((num_devices, num_experts), dtype=np.int64)
    # one replica of every expert, round robin
    for expert in range(num_experts):
        assignment[expert % num_devices, expert] = 1
    # fill leftover capacity with random hot replicas
    for device in range(num_devices):
        while assignment[device].sum() < capacity:
            assignment[device, rng.integers(num_experts)] += 1
    return ExpertLayout(assignment, capacity)


class TestForwardEquivalence:
    def test_matches_reference_forward(self, moe_layer, executor):
        x = np.random.default_rng(1).normal(size=(2, 8, 16))
        reference, _ = moe_layer.forward(x)
        result = executor.forward(x)
        assert np.allclose(result.output, reference, atol=1e-10)

    def test_matches_reference_with_replicated_layout(self, moe_layer, executor):
        x = np.random.default_rng(2).normal(size=(2, 8, 16))
        reference, _ = moe_layer.forward(x)
        layout = custom_layout(capacity=4, seed=3)
        result = executor.forward(x, layout)
        assert np.allclose(result.output, reference, atol=1e-10)

    def test_matches_reference_with_tuned_layout(self, moe_layer, executor,
                                                 topology):
        x = np.random.default_rng(3).normal(size=(2, 16, 16))
        reference, _ = moe_layer.forward(x)
        # Tune a layout from this batch's routing and re-run.
        first = executor.forward(x)
        cost_model = MoECostModel.from_model_config(tiny_test_config(), topology)
        tuner = ExpertLayoutTuner(topology, cost_model, capacity=4)
        tuned = tuner.solve(first.routing)
        result = executor.forward(x, tuned.layout)
        assert np.allclose(result.output, reference, atol=1e-10)

    def test_routing_matrix_consistent(self, executor):
        x = np.random.default_rng(4).normal(size=(2, 8, 16))
        result = executor.forward(x)
        assert result.routing.sum() == 2 * 8 * 2
        assert np.array_equal(result.routing_plan.sum(axis=2), result.routing)

    def test_tokens_per_device_matches_plan(self, executor):
        x = np.random.default_rng(5).normal(size=(2, 8, 16))
        result = executor.forward(x)
        assert np.array_equal(result.tokens_per_device,
                              result.routing_plan.sum(axis=(0, 1)))

    def test_communication_volumes_reported(self, executor):
        x = np.random.default_rng(6).normal(size=(2, 8, 16))
        result = executor.forward(x)
        assert result.unshard_bytes > 0
        assert result.dispatch_bytes >= 0

    def test_rejects_bad_input(self, executor):
        with pytest.raises(ValueError):
            executor.forward(np.zeros((8, 16)))


class TestBackwardEquivalence:
    def test_gradients_match_reference(self, topology):
        reference_layer = MoELayer(16, 32, 8, 2, rng=np.random.default_rng(7))
        fsep_layer = MoELayer(16, 32, 8, 2, rng=np.random.default_rng(7))
        executor = FSEPExecutor(fsep_layer, topology)
        x = np.random.default_rng(8).normal(size=(2, 8, 16))
        grad_out = np.random.default_rng(9).normal(size=(2, 8, 16))

        ref_out, ref_cache = reference_layer.forward(x)
        reference_layer.zero_grad()
        ref_grad_in = reference_layer.backward(grad_out, ref_cache,
                                               aux_loss_weight=0.1)

        fsep_layer.zero_grad()
        result = executor.forward(x, custom_layout(capacity=4, seed=11))
        fsep_grad_in = executor.backward(grad_out, result, aux_loss_weight=0.1)

        assert np.allclose(fsep_grad_in, ref_grad_in, atol=1e-9)
        ref_params = dict(reference_layer.named_parameters())
        for name, param in fsep_layer.named_parameters():
            assert np.allclose(param.grad, ref_params[name].grad, atol=1e-9), name

    def test_reshard_bytes_recorded(self, moe_layer, executor):
        x = np.random.default_rng(10).normal(size=(1, 8, 16))
        result = executor.forward(x)
        executor.backward(np.ones_like(x), result)
        assert result.cache["reshard_bytes"] > 0

    def test_refresh_shards_after_update(self, moe_layer, executor):
        x = np.random.default_rng(11).normal(size=(1, 8, 16))
        before = executor.forward(x).output
        # Modify an expert's parameters and refresh the shards.
        moe_layer.experts[0].gate_proj.weight.value += 0.5
        executor.refresh_shards()
        after = executor.forward(x).output
        reference, _ = moe_layer.forward(x)
        assert np.allclose(after, reference, atol=1e-10)
        assert not np.allclose(after, before)
