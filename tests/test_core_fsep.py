"""Tests for the FSEP shard / unshard / reshard machinery."""

import numpy as np
import pytest

from repro.core.fsep import FSEPShardedExperts
from repro.core.layout import ExpertLayout, replicate_all_layout, static_ep_layout


def make_experts(num_experts=4, size=24, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=size) for _ in range(num_experts)]


class TestSharding:
    def test_shard_shapes(self):
        sharded = FSEPShardedExperts(make_experts(), num_devices=4)
        assert sharded.num_experts == 4
        assert sharded.expert_size == 24
        assert sharded.chunk_size == 6
        assert sharded.shard_view(0).shape == (4, 6)

    def test_padding_when_not_divisible(self):
        sharded = FSEPShardedExperts(make_experts(size=25), num_devices=4)
        assert sharded.padded_expert_size == 28
        assert sharded.chunk_size == 7
        # Restoration drops the padding.
        assert sharded.restore_expert(0).size == 25

    def test_restore_roundtrip(self):
        experts = make_experts(seed=7)
        sharded = FSEPShardedExperts(experts, num_devices=4)
        for idx, original in enumerate(experts):
            assert np.array_equal(sharded.restore_expert(idx), original)

    def test_memory_per_device(self):
        sharded = FSEPShardedExperts(make_experts(), num_devices=4,
                                     bytes_per_element=2)
        assert sharded.memory_per_device_bytes() == 4 * 6 * 2

    def test_mismatched_expert_sizes_rejected(self):
        with pytest.raises(ValueError):
            FSEPShardedExperts([np.zeros(8), np.zeros(9)], num_devices=2)

    def test_parameter_shapes_metadata(self):
        shapes = [("gate", (2, 3)), ("up", (2, 3)), ("down", (3, 2))]
        experts = make_experts(size=18)
        sharded = FSEPShardedExperts(experts, num_devices=3,
                                     parameter_shapes=shapes)
        views = sharded.view_as_parameters(sharded.restore_expert(0))
        assert set(views) == {"gate", "up", "down"}
        assert views["gate"].shape == (2, 3)
        rebuilt = np.concatenate([views[name].reshape(-1) for name, _ in shapes])
        assert np.array_equal(rebuilt, experts[0])

    def test_bad_metadata_rejected(self):
        with pytest.raises(ValueError):
            FSEPShardedExperts(make_experts(size=10), num_devices=2,
                               parameter_shapes=[("w", (3, 3))])

    def test_view_without_metadata_rejected(self):
        sharded = FSEPShardedExperts(make_experts(), num_devices=2)
        with pytest.raises(ValueError):
            sharded.view_as_parameters(sharded.restore_expert(0))


class TestUnshard:
    def test_restores_assigned_experts(self):
        experts = make_experts(seed=1)
        sharded = FSEPShardedExperts(experts, num_devices=4)
        layout = static_ep_layout(num_devices=4, num_experts=4, capacity=2)
        result = sharded.unshard(layout)
        for device in range(4):
            for expert_id, flat in result.device_experts[device].items():
                assert np.array_equal(flat, experts[expert_id])
            assert set(result.device_experts[device]) == set(
                np.nonzero(layout.assignment[device])[0])

    def test_arbitrary_layout_supported(self):
        """The FSEP property: any layout can be restored, not just the EP one."""
        experts = make_experts(seed=2)
        sharded = FSEPShardedExperts(experts, num_devices=4)
        layout = ExpertLayout(np.array([
            [1, 1, 0, 0],
            [1, 1, 0, 0],
            [1, 0, 1, 0],
            [0, 0, 1, 1],
        ]), capacity=2)
        result = sharded.unshard(layout)
        assert set(result.device_experts[1]) == {0, 1}
        assert np.array_equal(result.device_experts[2][2], experts[2])

    def test_traffic_is_balanced_for_full_capacity_layouts(self):
        sharded = FSEPShardedExperts(make_experts(size=32), num_devices=4)
        layout = static_ep_layout(num_devices=4, num_experts=4, capacity=2)
        result = sharded.unshard(layout)
        sends = result.traffic.sum(axis=1)
        recvs = result.traffic.sum(axis=0)
        # Every device sends and receives the same volume (regular All-to-All).
        assert np.allclose(sends, sends[0])
        assert np.allclose(recvs, recvs[0])

    def test_traffic_volume_matches_analysis(self):
        """Per-device receive volume equals C * (N-1)/N * Psi_expert bytes."""
        num_devices, capacity = 4, 2
        sharded = FSEPShardedExperts(make_experts(size=32), num_devices=num_devices,
                                     bytes_per_element=2)
        layout = static_ep_layout(num_devices, 4, capacity)
        result = sharded.unshard(layout)
        per_device_recv = result.traffic.sum(axis=0)[0]
        expected = sharded.unshard_bytes_per_device(capacity)
        assert per_device_recv == pytest.approx(expected)

    def test_incomplete_layout_rejected(self):
        sharded = FSEPShardedExperts(make_experts(), num_devices=4)
        bad = ExpertLayout(np.zeros((4, 4), dtype=int), capacity=2)
        with pytest.raises(ValueError):
            sharded.unshard(bad)

    def test_wrong_layout_shape_rejected(self):
        sharded = FSEPShardedExperts(make_experts(), num_devices=4)
        with pytest.raises(ValueError):
            sharded.unshard(static_ep_layout(8, 4, 1))


class TestReshard:
    def test_gradient_reduction_matches_sum(self):
        """Reshard must reduce replica gradients exactly like a plain sum."""
        experts = make_experts(seed=3)
        sharded = FSEPShardedExperts(experts, num_devices=4)
        rng = np.random.default_rng(5)
        grads_dev0 = rng.normal(size=24)
        grads_dev2 = rng.normal(size=24)
        result = sharded.reshard({0: {1: grads_dev0}, 2: {1: grads_dev2}})
        reduced = sharded.reduce_full_gradient(result, 1)
        assert np.allclose(reduced, grads_dev0 + grads_dev2)
        # Experts nobody computed keep zero gradients.
        assert np.allclose(sharded.reduce_full_gradient(result, 0), 0.0)

    def test_traffic_counted_per_sender(self):
        sharded = FSEPShardedExperts(make_experts(size=32), num_devices=4,
                                     bytes_per_element=2)
        grad = np.ones(32)
        result = sharded.reshard({1: {0: grad}})
        # Device 1 sends 3 chunks (to devices 0, 2, 3) of 8 elements each.
        assert result.traffic[1].sum() == pytest.approx(3 * 8 * 2)
        assert result.total_bytes == pytest.approx(3 * 8 * 2)

    def test_wrong_gradient_size_rejected(self):
        sharded = FSEPShardedExperts(make_experts(), num_devices=4)
        with pytest.raises(ValueError):
            sharded.reshard({0: {0: np.zeros(7)}})

    def test_unknown_device_or_expert_rejected(self):
        sharded = FSEPShardedExperts(make_experts(), num_devices=4)
        with pytest.raises(ValueError):
            sharded.reshard({9: {0: np.zeros(24)}})
        with pytest.raises(ValueError):
            sharded.reshard({0: {9: np.zeros(24)}})


class TestUpdates:
    def test_apply_sharded_update(self):
        experts = make_experts(seed=6)
        sharded = FSEPShardedExperts(experts, num_devices=4)
        update = np.ones((4, 4, sharded.chunk_size))
        sharded.apply_update(update)
        assert np.allclose(sharded.restore_expert(0), experts[0] + 1.0)

    def test_apply_update_shape_checked(self):
        sharded = FSEPShardedExperts(make_experts(), num_devices=4)
        with pytest.raises(ValueError):
            sharded.apply_update(np.zeros((2, 2)))

    def test_set_expert(self):
        sharded = FSEPShardedExperts(make_experts(), num_devices=4)
        new_values = np.arange(24, dtype=float)
        sharded.set_expert(2, new_values)
        assert np.array_equal(sharded.restore_expert(2), new_values)

    def test_fsdp_equivalence_of_full_restore(self):
        """Restoring every expert everywhere reproduces the dense parameters."""
        experts = make_experts(seed=8)
        sharded = FSEPShardedExperts(experts, num_devices=4)
        layout = replicate_all_layout(num_devices=4, num_experts=4)
        result = sharded.unshard(layout)
        for device in range(4):
            for expert_id, original in enumerate(experts):
                assert np.array_equal(result.device_experts[device][expert_id],
                                      original)
