"""Tests for routing-trace persistence and summaries."""

import numpy as np
import pytest

from repro.workloads.routing_traces import RoutingTraceConfig, SyntheticRoutingTraceGenerator
from repro.workloads.trace_io import load_trace, save_trace, summarize_trace


@pytest.fixture
def trace():
    return SyntheticRoutingTraceGenerator(RoutingTraceConfig(
        num_devices=4, num_experts=8, num_layers=2, tokens_per_device=512,
        top_k=2, skew=0.4, seed=3)).generate(5)


class TestSaveLoad:
    def test_roundtrip(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "trace")
        assert path.suffix == ".npz"
        loaded = load_trace(path)
        assert np.array_equal(loaded.routing, trace.routing)
        assert loaded.top_k == trace.top_k
        assert loaded.tokens_per_device == trace.tokens_per_device

    def test_creates_parent_directories(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "nested" / "dir" / "trace.npz")
        assert path.exists()

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "missing.npz")

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(ValueError):
            load_trace(path)


class TestSummary:
    def test_summary_fields(self, trace):
        summary = summarize_trace(trace)
        assert summary.num_iterations == 5
        assert summary.num_devices == 4
        assert summary.num_experts == 8
        assert summary.mean_imbalance >= 1.0
        assert summary.max_imbalance >= summary.mean_imbalance
        assert 0 <= summary.hot_expert_changes <= 4

    def test_as_dict_round_values(self, trace):
        as_dict = summarize_trace(trace).as_dict()
        assert set(as_dict) >= {"iterations", "mean_imbalance", "hot_expert_changes"}

    def test_balanced_trace_summary(self):
        from repro.workloads.routing_traces import balanced_routing
        trace = balanced_routing(4, 8, 512, 2, num_layers=2, num_iterations=3)
        summary = summarize_trace(trace)
        assert summary.mean_imbalance == pytest.approx(1.0, abs=1e-6)
        assert summary.hot_expert_changes == 0
