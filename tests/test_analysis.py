"""Tests for the analysis metrics, breakdown tables and report formatting."""

import numpy as np
import pytest

from repro.analysis.breakdown import BreakdownTable, breakdown_table_from_runs
from repro.analysis.metrics import (
    coefficient_of_variation,
    device_load_imbalance,
    expert_load_imbalance,
    jains_fairness_index,
    relative_max_token_count,
)
from repro.analysis.reporting import (
    format_series,
    format_speedup_table,
    format_table,
)
from repro.sim.engine import RunResult
from repro.sim.iteration import IterationResult, LayerResult


class TestMetrics:
    def test_expert_load_imbalance_balanced(self):
        routing = np.full((4, 8), 10)
        assert expert_load_imbalance(routing) == pytest.approx(1.0)

    def test_expert_load_imbalance_skewed(self):
        routing = np.zeros((4, 8))
        routing[:, 0] = 100
        assert expert_load_imbalance(routing) == pytest.approx(8.0)

    def test_expert_load_imbalance_empty(self):
        assert expert_load_imbalance(np.zeros((4, 8))) == 1.0

    def test_device_load_imbalance(self):
        plan = np.zeros((4, 2, 4))
        plan[:, :, 0] = 5
        assert device_load_imbalance(plan) == pytest.approx(4.0)

    def test_relative_max_token_count(self):
        plan = np.zeros((4, 2, 4))
        for dev in range(4):
            plan[dev, :, dev] = 10
        assert relative_max_token_count(plan) == pytest.approx(1.0)

    def test_jains_fairness(self):
        assert jains_fairness_index(np.array([1.0, 1.0, 1.0])) == pytest.approx(1.0)
        assert jains_fairness_index(np.array([1.0, 0.0, 0.0])) == pytest.approx(1 / 3)
        with pytest.raises(ValueError):
            jains_fairness_index(np.array([]))

    def test_coefficient_of_variation(self):
        assert coefficient_of_variation(np.array([5.0, 5.0])) == 0.0
        assert coefficient_of_variation(np.array([0.0, 10.0])) == pytest.approx(1.0)


def make_run(name, attention=1.0, expert=2.0, a2a=1.5, exposed=0.2):
    layer = LayerResult(layer=0, forward_time=2.0, backward_time=3.0,
                        attention_time=attention, expert_compute_time=expert,
                        all_to_all_time=a2a, exposed_comm_time=exposed,
                        relayout_time=0.0, max_tokens=120, ideal_tokens=100.0)
    total = attention + expert + a2a + exposed
    breakdown = {"attention_and_other": attention, "expert_compute": expert,
                 "all_to_all": a2a, "exposed_comm": exposed, "relayout": 0.0,
                 "other": 0.0}
    iteration = IterationResult(iteration=0, total_time=total,
                                breakdown=breakdown, layers=[layer])
    return RunResult(system=name, iterations=[iteration],
                     tokens_per_iteration=1000)


class TestBreakdownTable:
    def test_fractions(self):
        table = breakdown_table_from_runs({"fsdp_ep": make_run("fsdp_ep")})
        assert table.fraction("fsdp_ep", "expert_compute") == pytest.approx(
            2.0 / 4.7, rel=1e-6)
        assert table.all_to_all_fraction("fsdp_ep") == pytest.approx(
            (1.5 + 0.2) / 4.7, rel=1e-6)

    def test_rows_have_all_components(self):
        table = breakdown_table_from_runs({"laer": make_run("laer")})
        row = table.as_rows()[0]
        assert row["system"] == "laer"
        assert "all_to_all_pct" in row

    def test_component_speedup(self):
        table = breakdown_table_from_runs({
            "fsdp_ep": make_run("fsdp_ep", a2a=2.0),
            "laer": make_run("laer", a2a=1.0),
        })
        assert table.speedup_of_component("laer", "fsdp_ep", "all_to_all") == 2.0

    def test_add_validation(self):
        table = BreakdownTable()
        with pytest.raises(ValueError):
            table.add("x", {}, total=-1.0)

    def test_missing_system_fraction_is_zero(self):
        table = BreakdownTable()
        assert table.fraction("missing", "all_to_all") == 0.0


class TestRunResultHelpers:
    def test_speedup_over(self):
        fast = make_run("fast", expert=1.0)
        slow = make_run("slow", expert=3.0)
        assert fast.speedup_over(slow) > 1.0

    def test_relative_max_tokens(self):
        run = make_run("x")
        assert run.mean_relative_max_tokens() == pytest.approx(1.2)
        assert run.per_layer_relative_max_tokens() == [pytest.approx(1.2)]

    def test_empty_run(self):
        empty = RunResult(system="empty")
        assert empty.mean_iteration_time == 0.0
        assert empty.mean_breakdown() == {}
        assert empty.mean_relative_max_tokens() == 1.0


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(empty)" in format_table([], title="t")

    def test_format_speedup_table(self):
        text = format_speedup_table({"megatron": 100.0, "laer": 169.0}, "megatron")
        assert "1.69" in text
        with pytest.raises(KeyError):
            format_speedup_table({"laer": 1.0}, "megatron")

    def test_format_series(self):
        text = format_series({"loss": [1.0, 0.5]}, "step", [1, 2])
        assert "step" in text and "loss" in text
        assert "0.5" in text
