"""Tests for the Table 2 model configuration registry."""

import pytest

from repro.workloads.model_configs import (
    MODEL_REGISTRY,
    MoEModelConfig,
    get_model_config,
    list_model_configs,
    tiny_test_config,
)


class TestRegistry:
    def test_all_six_configs_present(self):
        assert len(list_model_configs()) == 6

    def test_lookup_known(self):
        cfg = get_model_config("mixtral-8x7b-e8k2")
        assert cfg.num_experts == 8 and cfg.top_k == 2

    def test_lookup_unknown_lists_available(self):
        with pytest.raises(KeyError, match="mixtral-8x7b-e8k2"):
            get_model_config("nonexistent")

    def test_registry_names_match_keys(self):
        for name, cfg in MODEL_REGISTRY.items():
            assert cfg.name == name


class TestTable2Numbers:
    """Derived parameter counts should match Table 2 within a few percent."""

    @pytest.mark.parametrize("name,total_b,activated_b", [
        ("mixtral-8x7b-e8k2", 46.70, 12.88),
        ("mixtral-8x22b-e8k2", 45.46, 12.86),
        ("qwen-8x7b-e8k2", 46.69, 12.88),
        ("mixtral-8x7b-e16k4", 35.09, 9.73),
        ("mixtral-8x22b-e16k4", 35.46, 10.09),
        ("qwen-8x7b-e16k4", 35.09, 9.73),
    ])
    def test_parameter_counts(self, name, total_b, activated_b):
        cfg = get_model_config(name)
        assert cfg.total_params / 1e9 == pytest.approx(total_b, rel=0.05)
        assert cfg.activated_params / 1e9 == pytest.approx(activated_b, rel=0.06)

    @pytest.mark.parametrize("name,capacity", [
        ("mixtral-8x7b-e8k2", 2),
        ("mixtral-8x7b-e16k4", 4),
    ])
    def test_expert_capacity_matches_section_5_1(self, name, capacity):
        assert get_model_config(name).expert_capacity == capacity

    def test_e16k4_keeps_per_layer_expert_params(self):
        e8 = get_model_config("mixtral-8x7b-e8k2")
        e16 = get_model_config("mixtral-8x7b-e16k4")
        per_layer_e8 = e8.num_experts * e8.expert_params_per_layer
        per_layer_e16 = e16.num_experts * e16.expert_params_per_layer
        assert per_layer_e16 == pytest.approx(per_layer_e8, rel=0.01)


class TestDerivedQuantities:
    def test_expert_flops_formula(self):
        cfg = get_model_config("mixtral-8x7b-e8k2")
        assert cfg.expert_flops_per_token == 6 * 4096 * 14336

    def test_activation_bytes_checkpointing_smaller(self):
        cfg = get_model_config("mixtral-8x7b-e8k2")
        assert (cfg.activation_bytes_per_token(checkpointing=True)
                < cfg.activation_bytes_per_token(checkpointing=False))

    def test_moe_layer_flops_include_router(self):
        cfg = tiny_test_config()
        assert cfg.moe_layer_flops_per_token() > cfg.top_k * cfg.expert_flops_per_token

    def test_summary_fields(self):
        summary = get_model_config("mixtral-8x7b-e8k2").summary()
        assert summary["experts"] == 8
        assert summary["layers"] == 32

    def test_head_dim(self):
        cfg = get_model_config("mixtral-8x7b-e8k2")
        assert cfg.head_dim == 128


class TestVariants:
    def test_with_experts_rescales_intermediate(self):
        cfg = get_model_config("mixtral-8x7b-e8k2")
        variant = cfg.with_experts(num_experts=16, top_k=4, expert_capacity=4)
        assert variant.intermediate_size == cfg.intermediate_size // 2
        assert variant.num_experts == 16

    def test_scaled_down_is_small(self):
        cfg = get_model_config("mixtral-8x7b-e8k2").scaled_down("tiny-mixtral")
        assert cfg.hidden_size <= 256
        assert cfg.num_layers <= 4
        assert cfg.num_experts == 8

    def test_validation_rejects_bad_topk(self):
        with pytest.raises(ValueError):
            MoEModelConfig(name="bad", num_layers=1, hidden_size=64,
                           intermediate_size=128, num_attention_heads=4,
                           num_kv_heads=2, vocab_size=128, num_experts=4,
                           top_k=5, expert_capacity=1)

    def test_validation_rejects_bad_heads(self):
        with pytest.raises(ValueError):
            MoEModelConfig(name="bad", num_layers=1, hidden_size=65,
                           intermediate_size=128, num_attention_heads=4,
                           num_kv_heads=2, vocab_size=128, num_experts=4,
                           top_k=2, expert_capacity=1)

    def test_tiny_config_valid(self):
        cfg = tiny_test_config(num_experts=16, top_k=4, expert_capacity=4)
        assert cfg.num_experts == 16
        assert cfg.top_k == 4
