"""Tests for causal self-attention."""

import numpy as np
import pytest

from repro.model.attention import CausalSelfAttention

from helpers import check_input_gradient, check_parameter_gradients


def make_attention(hidden=16, heads=4, kv_heads=2, bias=False, seed=0):
    return CausalSelfAttention(hidden, heads, kv_heads, bias=bias,
                               rng=np.random.default_rng(seed))


class TestForward:
    def test_output_shape(self):
        attn = make_attention()
        x = np.random.default_rng(0).normal(size=(2, 5, 16))
        out, _ = attn.forward(x)
        assert out.shape == (2, 5, 16)

    def test_causality(self):
        """Changing a future token must not affect earlier positions."""
        attn = make_attention(seed=1)
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 6, 16))
        out1, _ = attn.forward(x)
        x2 = x.copy()
        x2[0, 5] += 10.0
        out2, _ = attn.forward(x2)
        assert np.allclose(out1[0, :5], out2[0, :5])
        assert not np.allclose(out1[0, 5], out2[0, 5])

    def test_rejects_wrong_rank(self):
        attn = make_attention()
        with pytest.raises(ValueError):
            attn.forward(np.zeros((5, 16)))

    def test_gqa_head_constraints(self):
        with pytest.raises(ValueError):
            CausalSelfAttention(16, 4, 3)
        with pytest.raises(ValueError):
            CausalSelfAttention(17, 4, 2)

    def test_bias_variant_has_more_parameters(self):
        no_bias = make_attention(bias=False)
        with_bias = make_attention(bias=True)
        assert with_bias.num_parameters() > no_bias.num_parameters()

    def test_flops_increase_with_sequence(self):
        attn = make_attention()
        assert attn.flops_per_token(1024) > attn.flops_per_token(128)


class TestBackward:
    def test_parameter_gradients(self):
        rng = np.random.default_rng(3)
        attn = make_attention(hidden=8, heads=2, kv_heads=1, seed=3)
        x = rng.normal(size=(1, 4, 8))
        target = rng.normal(size=(1, 4, 8))

        def loss_fn():
            out, _ = attn.forward(x)
            return float(np.sum((out - target) ** 2))

        def backward_fn():
            out, cache = attn.forward(x)
            attn.backward(2 * (out - target), cache)

        check_parameter_gradients(attn, loss_fn, backward_fn, max_elements=20)

    def test_input_gradient(self):
        rng = np.random.default_rng(4)
        attn = make_attention(hidden=8, heads=2, kv_heads=2, seed=4)
        x = rng.normal(size=(1, 4, 8))
        target = rng.normal(size=(1, 4, 8))
        out, cache = attn.forward(x)
        grad_in = attn.backward(2 * (out - target), cache)

        def forward_loss(inp):
            out2, _ = attn.forward(inp)
            return float(np.sum((out2 - target) ** 2))

        check_input_gradient(forward_loss, grad_in, x, max_elements=24)

    def test_gqa_input_gradient(self):
        """Gradient check with grouped (repeated) key/value heads."""
        rng = np.random.default_rng(5)
        attn = make_attention(hidden=16, heads=4, kv_heads=2, seed=5)
        x = rng.normal(size=(1, 3, 16))
        target = rng.normal(size=(1, 3, 16))
        out, cache = attn.forward(x)
        grad_in = attn.backward(2 * (out - target), cache)

        def forward_loss(inp):
            out2, _ = attn.forward(inp)
            return float(np.sum((out2 - target) ** 2))

        check_input_gradient(forward_loss, grad_in, x, max_elements=24)
