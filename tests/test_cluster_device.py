"""Tests for device specifications."""

import pytest

from repro.cluster.device import A100_SPEC, H100_SPEC, V100_SPEC, DeviceSpec


class TestDeviceSpec:
    def test_effective_flops_below_peak(self):
        assert A100_SPEC.effective_flops < A100_SPEC.peak_flops
        assert A100_SPEC.effective_flops == A100_SPEC.peak_flops * A100_SPEC.mfu

    def test_compute_time_scales_linearly(self):
        t1 = A100_SPEC.compute_time(1e12)
        t2 = A100_SPEC.compute_time(2e12)
        assert t2 == pytest.approx(2 * t1)

    def test_compute_time_zero(self):
        assert A100_SPEC.compute_time(0) == 0.0

    def test_compute_time_rejects_negative(self):
        with pytest.raises(ValueError):
            A100_SPEC.compute_time(-1.0)

    def test_registry_ordering(self):
        assert H100_SPEC.peak_flops > A100_SPEC.peak_flops > V100_SPEC.peak_flops

    def test_scaled(self):
        doubled = A100_SPEC.scaled(2.0)
        assert doubled.peak_flops == pytest.approx(2 * A100_SPEC.peak_flops)
        assert doubled.memory_bytes == A100_SPEC.memory_bytes
        assert "x2" in doubled.name

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValueError):
            A100_SPEC.scaled(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec(name="bad", peak_flops=0, mfu=0.5,
                       memory_bytes=1, memory_bandwidth=1)
        with pytest.raises(ValueError):
            DeviceSpec(name="bad", peak_flops=1, mfu=1.5,
                       memory_bytes=1, memory_bandwidth=1)
        with pytest.raises(ValueError):
            DeviceSpec(name="bad", peak_flops=1, mfu=0.5,
                       memory_bytes=0, memory_bandwidth=1)
