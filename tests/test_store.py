"""Tests for the persistent result store (repro.store)."""

import json
import os

import pytest

from repro.api import (
    ClusterSpec,
    ExperimentResult,
    ExperimentRunner,
    ExperimentSpec,
    SystemResult,
    WorkloadSpec,
)
from repro.store import (
    ResultStore,
    diff_results,
    run_id_for,
    spec_fingerprint,
)


def small_spec(**overrides) -> ExperimentSpec:
    defaults = dict(
        name="store-test",
        cluster=ClusterSpec(num_nodes=1, devices_per_node=4),
        workload=WorkloadSpec(tokens_per_device=1024, layers=1,
                              iterations=2, warmup=1, seed=11),
        systems=("fsdp_ep", "laer"),
        reference="fsdp_ep",
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


@pytest.fixture(scope="module")
def result() -> ExperimentResult:
    return ExperimentRunner(parallel=False).run(small_spec())


def fake_result(name: str, systems=("a", "b"), throughput=100.0,
                breakdown=None) -> ExperimentResult:
    """A hand-built result (no simulation) for fast store-semantics tests."""
    spec = small_spec(name=name, systems=("fsdp_ep", "laer"))
    built = {}
    for index, key in enumerate(systems):
        built[key] = SystemResult(
            key=key, system="fsdp_ep", throughput=throughput * (index + 1),
            mean_iteration_s=0.5, tokens_per_iteration=4096,
            speedup_vs_reference=float(index + 1),
            breakdown_s=dict(breakdown or {"expert_compute": 0.25}),
        )
    return ExperimentResult(spec=spec, reference=systems[0],
                            requested_reference=systems[0], systems=built,
                            execution_mode="sequential")


class TestRunIdentity:
    def test_fingerprint_is_content_addressed(self):
        assert spec_fingerprint(small_spec()) == spec_fingerprint(small_spec())
        assert spec_fingerprint(small_spec()) != spec_fingerprint(
            small_spec(workload=WorkloadSpec(tokens_per_device=2048,
                                             layers=1, iterations=2,
                                             warmup=1, seed=11)))

    def test_run_id_depends_on_tags_but_not_tag_order(self):
        spec = small_spec()
        assert run_id_for(spec) == run_id_for(spec)
        assert run_id_for(spec, ["a", "b"]) == run_id_for(spec, ["b", "a"])
        assert run_id_for(spec) != run_id_for(spec, ["baseline"])

    def test_run_id_is_filesystem_safe(self):
        spec = small_spec(name="Study/Cell n2x8, params=1")
        run_id = run_id_for(spec)
        assert "/" not in run_id and " " not in run_id
        assert run_id.startswith("study-cell")


class TestPutGetQuery:
    def test_round_trip_is_bit_exact(self, tmp_path, result):
        store = ResultStore(tmp_path / "store")
        run = store.put(result, tags=["smoke"], created_at=123.0)
        loaded = store.get(run.run_id)
        assert loaded.result.to_dict() == result.to_dict()
        assert loaded.tags == ("smoke",)
        assert loaded.created_at == 123.0
        assert run.run_id in store
        assert store.has_spec(result.spec, tags=["smoke"])
        assert not store.has_spec(result.spec)  # untagged id differs

    def test_get_missing_run_raises(self, tmp_path):
        with pytest.raises(KeyError, match="no run"):
            ResultStore(tmp_path).get("nope")

    def test_reads_against_missing_store_stay_read_only(self, tmp_path):
        store = ResultStore(tmp_path / "no-such-store")
        assert store.entries() == []
        assert store.query(tag="x") == []
        # A mistyped read path must not conjure a store directory.
        assert not (tmp_path / "no-such-store").exists()

    def test_query_filters(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put(result, tags=["baseline"], created_at=1.0)
        assert len(store.query()) == 1
        assert store.query(system="laer")
        assert store.query(scenario="drifting")
        assert store.query(cluster_size=4)
        assert store.query(tag="baseline")
        assert store.query(name="store-test")
        assert store.query(name="store-*")
        assert not store.query(system="megatron")
        assert not store.query(cluster_size=8)
        assert not store.query(tag="other")
        assert not store.query(name="other*")

    def test_delete(self, tmp_path, result):
        store = ResultStore(tmp_path)
        run = store.put(result, created_at=1.0)
        assert store.delete(run.run_id)
        assert run.run_id not in store
        assert not store.query()
        assert not store.delete(run.run_id)


class TestAtomicity:
    def test_crashed_rename_leaves_old_contents(self, tmp_path, monkeypatch,
                                                result):
        store = ResultStore(tmp_path)
        run = store.put(result, created_at=1.0)
        before = store.run_path(run.run_id).read_text()

        def boom(src, dst):
            raise OSError("simulated crash between write and rename")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="simulated crash"):
            store.put(result, created_at=2.0)
        monkeypatch.undo()
        # The target file still holds the previous, complete contents and
        # no temp files leak into the store directory.
        assert store.run_path(run.run_id).read_text() == before
        leftovers = [p for p in store.runs_dir.iterdir()
                     if p.name.startswith(".")]
        assert not leftovers
        assert store.get(run.run_id).created_at == 1.0

    def test_unserializable_payload_never_touches_target(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.root / "x.json"
        store._atomic_write_json(path, {"ok": 1})
        with pytest.raises(TypeError):
            store._atomic_write_json(path, {"bad": object()})
        assert json.loads(path.read_text()) == {"ok": 1}


class TestIndex:
    def test_put_appends_a_journal_line_not_a_full_index(self, tmp_path,
                                                         result):
        store = ResultStore(tmp_path)
        run = store.put(result, created_at=1.0)
        # O(1) increment: one journal line, no compacted index.json yet.
        assert not store.index_path.exists()
        (line,) = store.journal_path.read_text().splitlines()
        record = json.loads(line)
        assert record["op"] == "put"
        entry = record["entry"]
        assert entry["run_id"] == run.run_id
        assert entry["scenario"] == "drifting"
        assert set(entry["metrics"]) == {"fsdp_ep", "laer"}
        # The merged read view serves queries straight from the journal.
        assert [e.run_id for e in store.entries()] == [run.run_id]

    def test_journal_grows_one_line_per_put(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put(result, tags=["a"], created_at=1.0)
        store.put(result, tags=["b"], created_at=2.0)
        assert len(store.journal_path.read_text().splitlines()) == 2

    def test_compact_put_escape_hatch_folds_into_index(self, tmp_path,
                                                       result):
        store = ResultStore(tmp_path)
        journaled = store.put(result, tags=["j"], created_at=1.0)
        compacted = store.put(result, tags=["c"], created_at=2.0,
                              compact=True)
        index = json.loads(store.index_path.read_text())
        assert set(index["runs"]) == {journaled.run_id, compacted.run_id}
        assert store.journal_path.read_text() == ""

    def test_compact_index_matches_cold_rebuild_byte_for_byte(self, tmp_path,
                                                              result):
        store = ResultStore(tmp_path)
        store.put(result, tags=["a"], created_at=1.0)
        store.put(result, tags=["b"], created_at=2.0)
        assert store.compact_index() == 2
        compacted = store.index_path.read_bytes()
        assert store.journal_path.read_text() == ""
        assert store.rebuild_index() == 2
        assert store.index_path.read_bytes() == compacted

    def test_reads_survive_a_concurrent_compaction(self, tmp_path, result,
                                                   monkeypatch):
        """Lock-free reads snapshot journal-then-index: a compaction that
        lands between the two reads must not make journaled runs vanish."""
        store = ResultStore(tmp_path)
        run = store.put(result, created_at=1.0)  # journal-only so far
        real_read_index = ResultStore._read_index_file

        def compact_between_reads(self):
            # Simulate the race: by the time the index file is read, a
            # concurrent compactor has folded and truncated the journal.
            monkeypatch.undo()
            self.compact_index()
            return real_read_index(self)

        monkeypatch.setattr(ResultStore, "_read_index_file",
                            compact_between_reads)
        assert [e.run_id for e in store.entries()] == [run.run_id]

    def test_torn_journal_line_is_skipped(self, tmp_path, result):
        store = ResultStore(tmp_path)
        run = store.put(result, created_at=1.0)
        with store.journal_path.open("a") as handle:
            handle.write('{"op":"put","entry":{"run_id":"torn')  # no newline
        assert [e.run_id for e in store.entries()] == [run.run_id]

    def test_rebuild_from_cold_directory(self, tmp_path, result):
        store = ResultStore(tmp_path)
        run = store.put(result, tags=["t"], created_at=1.0)
        store.journal_path.unlink()
        # Reads rebuild the lost index layer from the run files...
        cold = ResultStore(tmp_path)
        assert [e.run_id for e in cold.query(tag="t")] == [run.run_id]
        assert cold.index_path.exists()
        # ...and an explicit rebuild reports the run count.
        store.index_path.unlink()
        assert store.rebuild_index() == 1

    def test_cold_rebuild_wins_over_a_stale_journal(self, tmp_path, result):
        store = ResultStore(tmp_path)
        keep = store.put(result, tags=["keep"], created_at=1.0)
        stale = store.put(result, tags=["stale"], created_at=2.0)
        # The run file vanishes out-of-band; the journal still records it.
        store.run_path(stale.run_id).unlink()
        assert {e.run_id for e in store.entries()} == {keep.run_id,
                                                       stale.run_id}
        # A cold rebuild trusts the run files, not the journal...
        assert store.rebuild_index() == 1
        assert [e.run_id for e in store.entries()] == [keep.run_id]
        # ...and empties the journal so the phantom cannot resurface.
        assert store.journal_path.read_text() == ""

    def test_corrupt_index_is_absorbed_by_journal_replay(self, tmp_path,
                                                         result):
        store = ResultStore(tmp_path)
        run = store.put(result, created_at=1.0)
        store.index_path.write_text("{not json")
        assert [e.run_id for e in store.entries()] == [run.run_id]

    def test_corrupt_index_with_stale_journal_triggers_rebuild(self, tmp_path,
                                                               result):
        store = ResultStore(tmp_path)
        old = store.put(result, tags=["old"], created_at=1.0)
        store.compact_index()
        new = store.put(result, tags=["new"], created_at=2.0)
        # The compacted index (the only record of `old` besides its run
        # file) is corrupted: the journal alone cannot cover the store, so
        # reads must fall back to a rebuild from the run files.
        store.index_path.write_text("{not json")
        ids = {entry.run_id for entry in store.entries()}
        assert ids == {old.run_id, new.run_id}

    def test_rebuild_skips_unreadable_run_files(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put(result, created_at=1.0)
        (store.runs_dir / "broken.json").write_text("{truncated")
        assert store.rebuild_index() == 1

    def test_put_on_missing_index_does_not_mask_older_runs(self, tmp_path,
                                                           result):
        store = ResultStore(tmp_path)
        old = store.put(result, tags=["old"], created_at=1.0, compact=True)
        store.index_path.unlink()
        new = store.put(result, tags=["new"], created_at=2.0)
        ids = {entry.run_id for entry in store.entries()}
        assert ids == {old.run_id, new.run_id}

    def test_delete_on_corrupt_index_does_not_mask_older_runs(self, tmp_path,
                                                              result):
        store = ResultStore(tmp_path)
        keep = store.put(result, tags=["keep"], created_at=1.0)
        gone = store.put(result, tags=["gone"], created_at=2.0)
        store.index_path.write_text("{not json")
        assert store.delete(gone.run_id)
        assert [entry.run_id for entry in store.entries()] == [keep.run_id]


class TestDiff:
    def test_diff_per_metric_deltas(self, tmp_path):
        store = ResultStore(tmp_path)
        a = store.put(fake_result("a", throughput=100.0), created_at=1.0)
        b = store.put(fake_result("b", throughput=110.0), created_at=2.0)
        diff = store.diff(a.run_id, b.run_id)
        delta = diff.find("a", "throughput")
        assert delta.base == 100.0 and delta.other == 110.0
        assert delta.delta == pytest.approx(10.0)
        assert delta.rel_delta == pytest.approx(0.1)
        assert not diff.systems_only_in_a and not diff.systems_only_in_b
        rows = diff.as_rows()
        assert {"system", "metric", "base", "other", "delta",
                "rel_delta"} <= set(rows[0])

    def test_diff_with_disjoint_systems_and_metrics(self):
        result_a = fake_result("a", systems=("shared", "only_a"),
                               breakdown={"expert_compute": 0.2,
                                          "relayout": 0.01})
        result_b = fake_result("b", systems=("shared", "only_b"),
                               breakdown={"expert_compute": 0.3})
        diff = diff_results("ra", result_a, "rb", result_b)
        assert diff.systems_only_in_a == ("only_a",)
        assert diff.systems_only_in_b == ("only_b",)
        (shared,) = diff.systems
        assert shared.system == "shared"
        assert shared.metrics_only_in_a == ("breakdown.relayout",)
        assert shared.metrics_only_in_b == ()
        assert {d.metric for d in shared.metrics} >= {
            "throughput", "breakdown.expert_compute"}

    def test_zero_base_rel_delta_registers_the_change(self):
        import math

        result_a = fake_result("a", throughput=0.0)
        result_b = fake_result("b", throughput=5.0)
        diff = diff_results("ra", result_a, "rb", result_b)
        # 0 -> X must read as an (infinite) change, not as +0.00%.
        assert math.isinf(diff.find("a", "throughput").rel_delta)
        assert diff.find("a", "throughput").rel_delta > 0
        # 0 -> 0 genuinely is no change.
        both_zero = diff_results("ra", fake_result("a", throughput=0.0),
                                 "rb", fake_result("b", throughput=0.0))
        assert both_zero.find("a", "throughput").rel_delta == 0.0

    def test_zero_baseline_metric_growth_is_flagged(self, tmp_path):
        store = ResultStore(tmp_path)
        baseline = fake_result("exp", breakdown={"exposed_comm": 0.0})
        store.put(baseline, tags=["baseline"], created_at=1.0)
        worse = fake_result("exp", breakdown={"exposed_comm": 0.1})
        store.put(worse, created_at=2.0)
        (report,) = store.regressions(
            "baseline", metrics=("breakdown.exposed_comm",), threshold=0.05)
        assert report.regressed


class TestRegressions:
    def test_throughput_drop_is_flagged(self, tmp_path):
        store = ResultStore(tmp_path)
        baseline = fake_result("exp", throughput=100.0)
        store.put(baseline, tags=["baseline"], created_at=1.0)
        regressed = fake_result("exp", throughput=80.0)
        store.put(regressed, created_at=2.0)
        reports = store.regressions("baseline", threshold=0.05)
        assert len(reports) == 1
        report = reports[0]
        assert report.regressed
        metrics = {r.delta.metric for r in report.regressed_metrics}
        assert "throughput" in metrics
        # Each regression is attributed to the system it belongs to.
        assert {r.system for r in report.regressed_metrics} == {"a", "b"}
        assert report.regressed_metrics[0].as_row()["system"] in ("a", "b")

    def test_improvement_is_not_flagged(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(fake_result("exp", throughput=100.0), tags=["baseline"],
                  created_at=1.0)
        store.put(fake_result("exp", throughput=120.0), created_at=2.0)
        (report,) = store.regressions("baseline")
        assert not report.regressed

    def test_higher_iteration_time_is_a_regression(self, tmp_path):
        store = ResultStore(tmp_path)
        slow = fake_result("exp")
        for system in slow.systems.values():
            system.mean_iteration_s = 1.0
        store.put(fake_result("exp"), tags=["baseline"], created_at=1.0)
        store.put(slow, created_at=2.0)
        (report,) = store.regressions(
            "baseline", metrics=("mean_iteration_s",), threshold=0.05)
        assert report.regressed

    def test_tag_helper_creates_comparable_copy(self, tmp_path):
        store = ResultStore(tmp_path)
        run = store.put(fake_result("exp"), created_at=1.0)
        tagged = store.tag(run.run_id, "baseline")
        assert tagged.run_id != run.run_id
        assert set(tagged.tags) == {"baseline"}
        assert len(store) == 2


class TestAutoCompaction:
    def test_line_threshold_folds_journal_on_put(self, tmp_path):
        store = ResultStore(tmp_path, auto_compact_lines=3,
                            auto_compact_bytes=None)
        for index in range(2):
            store.put(fake_result(f"exp-{index}"), created_at=float(index))
        assert len(store.journal_path.read_text().splitlines()) == 2
        assert not store.index_path.exists()
        store.put(fake_result("exp-2"), created_at=2.0)  # crosses 3 lines
        assert store.journal_path.read_text() == ""
        assert len(json.loads(store.index_path.read_text())["runs"]) == 3
        # The fold lost nothing and the next put journals again.
        store.put(fake_result("exp-3"), created_at=3.0)
        assert len(store.journal_path.read_text().splitlines()) == 1
        assert len(store) == 4

    def test_byte_threshold_folds_journal_on_put(self, tmp_path):
        store = ResultStore(tmp_path, auto_compact_lines=None,
                            auto_compact_bytes=1)  # any appended line trips it
        store.put(fake_result("exp-0"), created_at=0.0)
        assert store.journal_path.read_text() == ""
        assert len(json.loads(store.index_path.read_text())["runs"]) == 1

    def test_thresholds_disabled_by_default_values_of_none(self, tmp_path):
        store = ResultStore(tmp_path, auto_compact_lines=None,
                            auto_compact_bytes=None)
        for index in range(5):
            store.put(fake_result(f"exp-{index}"), created_at=float(index))
        assert len(store.journal_path.read_text().splitlines()) == 5
        assert not store.index_path.exists()

    def test_line_count_survives_a_foreign_append(self, tmp_path):
        """A second writer appending to the same journal invalidates the
        incremental line counter; the recount must see both writers."""
        ours = ResultStore(tmp_path, auto_compact_lines=3,
                           auto_compact_bytes=None)
        theirs = ResultStore(tmp_path)  # no auto-compaction
        ours.put(fake_result("ours-0"), created_at=0.0)
        theirs.put(fake_result("theirs-0"), created_at=1.0)
        ours.put(fake_result("ours-1"), created_at=2.0)  # 3rd line overall
        assert ours.journal_path.read_text() == ""
        assert len(json.loads(ours.index_path.read_text())["runs"]) == 3

    def test_explicit_compact_index_unchanged(self, tmp_path):
        """The escape hatches still work with auto-compaction armed."""
        store = ResultStore(tmp_path, auto_compact_lines=100)
        store.put(fake_result("exp-0"), created_at=0.0)
        assert store.compact_index() == 1
        assert store.journal_path.read_text() == ""
        assert store.rebuild_index() == 1


class TestIndexReadCache:
    def test_repeated_reads_hit_the_cache(self, tmp_path):
        store = ResultStore(tmp_path)
        run = store.put(fake_result("exp"), created_at=1.0)
        store.entries()  # first read populates
        before = store._index_cache_hits
        for _ in range(5):
            assert [e.run_id for e in store.entries()] == [run.run_id]
            assert store.index_entry(run.run_id).run_id == run.run_id
        assert store._index_cache_hits >= before + 10

    def test_own_put_invalidates(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(fake_result("exp-0"), created_at=0.0)
        store.entries()
        store.put(fake_result("exp-1"), created_at=1.0)
        assert len(store.entries()) == 2  # not served stale from cache

    def test_concurrent_writer_invalidates(self, tmp_path):
        """A run persisted by *another* process (second store instance on
        the same root) must show up: the cache key is the journal/index
        stat signature, not our write counter."""
        reader = ResultStore(tmp_path)
        writer = ResultStore(tmp_path)
        first = writer.put(fake_result("exp-0"), created_at=0.0)
        assert [e.run_id for e in reader.entries()] == [first.run_id]
        second = writer.put(fake_result("exp-1"), created_at=1.0)
        assert {e.run_id for e in reader.entries()} == {
            first.run_id, second.run_id}
        # A foreign compaction (journal folded into index.json) too.
        writer.compact_index()
        third = writer.put(fake_result("exp-2"), created_at=2.0)
        assert len(reader.entries()) == 3
        assert reader.index_entry(third.run_id) is not None

    def test_index_entry_missing_run_is_none(self, tmp_path):
        assert ResultStore(tmp_path).index_entry("nope") is None


class TestPruneAndQuarantine:
    def seeded(self, tmp_path):
        """Five runs with spaced timestamps; the oldest is baseline-tagged."""
        store = ResultStore(tmp_path)
        day = 86400.0
        store.put(fake_result("exp-0"), tags=("baseline",), created_at=0.0)
        for index in range(1, 5):
            store.put(fake_result(f"exp-{index}"), created_at=index * day)
        return store, day

    def test_prune_by_age_spares_protected_runs(self, tmp_path):
        store, day = self.seeded(tmp_path)
        deleted = store.prune(older_than_days=2.5, now=5 * day)
        # exp-1 and exp-2 are older than 2.5 days; baseline exp-0 survives.
        assert len(deleted) == 2
        names = {entry.name for entry in store.entries()}
        assert names == {"exp-0", "exp-3", "exp-4"}

    def test_prune_by_count_keeps_newest(self, tmp_path):
        store, day = self.seeded(tmp_path)
        deleted = store.prune(max_runs=2, now=5 * day)
        assert len(deleted) == 3
        assert {entry.name for entry in store.entries()} == \
            {"exp-0", "exp-4"}  # protected + the newest unprotected

    def test_prune_dry_run_deletes_nothing(self, tmp_path):
        store, day = self.seeded(tmp_path)
        doomed = store.prune(max_runs=2, now=5 * day, dry_run=True)
        assert len(doomed) == 3
        assert len(store) == 5

    def test_prune_compacts_the_index(self, tmp_path):
        store, day = self.seeded(tmp_path)
        store.prune(max_runs=3, now=5 * day)
        assert store.journal_path.read_text() == ""

    def test_journal_skipped_lines_counts_garbage(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(fake_result("exp-0"), created_at=0.0)
        assert store.journal_skipped_lines() == 0
        with open(store.journal_path, "a") as handle:
            handle.write('{"torn": ')
        assert store.journal_skipped_lines() == 1
        assert len(store.entries()) == 1  # the good line still serves

    def test_quarantine_run_moves_file_and_writes_report(self, tmp_path):
        store = ResultStore(tmp_path)
        run = store.put(fake_result("exp-0"), created_at=0.0)
        store.run_path(run.run_id).write_text("{nope")
        moved = store.quarantine_run(run.run_id, error="torn write")
        assert moved == store.quarantine_dir / f"{run.run_id}.json"
        assert not store.run_path(run.run_id).exists()
        report = json.loads(
            (store.quarantine_dir
             / f"{run.run_id}.report.json").read_text())
        assert report["error"] == "torn write"
        assert store.quarantined() == [run.run_id]

    def test_rebuild_index_quarantines_unreadable_files(self, tmp_path):
        store = ResultStore(tmp_path)
        bad = store.put(fake_result("exp-0"), created_at=0.0)
        good = store.put(fake_result("exp-1"), created_at=1.0)
        store.run_path(bad.run_id).write_text("{nope")
        assert store.rebuild_index() == 1
        assert store.run_ids() == [good.run_id]
        assert store.quarantined() == [bad.run_id]

    def test_fixed_created_at_env_pins_timestamps(self, tmp_path,
                                                  monkeypatch):
        from repro.store import FIXED_CREATED_AT_ENV
        monkeypatch.setenv(FIXED_CREATED_AT_ENV, "1234.5")
        store = ResultStore(tmp_path)
        run = store.put(fake_result("exp-0"))
        assert store.index_entry(run.run_id).created_at == 1234.5
