"""Tests for the study subsystem (specs, registry, resumable runner)."""

import numpy as np
import pytest

from repro.api import ClusterSpec, ExperimentSpec, SystemSpec, WorkloadSpec
from repro.store import ResultStore, run_id_for
from repro.study import (
    StudyAxes,
    StudyRunner,
    StudySpec,
    available_studies,
    make_study,
    register_study,
    registered_study,
    run_study,
    study_descriptions,
    unregister_study,
)


def base_spec(**overrides) -> ExperimentSpec:
    defaults = dict(
        name="base",
        cluster=ClusterSpec(num_nodes=1, devices_per_node=4),
        workload=WorkloadSpec(tokens_per_device=1024, layers=1,
                              iterations=2, warmup=1, seed=3),
        systems=("fsdp_ep", "laer"),
        reference="fsdp_ep",
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def tiny_study(**axes) -> StudySpec:
    return StudySpec(name="tiny", base=base_spec(),
                     axes=StudyAxes(**axes))


class TestStudySpec:
    def test_empty_axes_give_a_single_base_cell(self):
        (cell,) = tiny_study().expand()
        assert cell.cell_id == "base"
        assert cell.spec.name == "tiny/base"
        assert cell.spec.cluster == base_spec().cluster

    def test_grid_is_the_cartesian_product(self):
        study = tiny_study(
            scenarios=("steady", "diurnal"),
            cluster_sizes=(1, 2),
        )
        assert study.num_cells == 4
        cells = study.expand()
        assert [c.cell_id for c in cells] == [
            "steady/n1x4", "steady/n2x4", "diurnal/n1x4", "diurnal/n2x4"]
        assert cells[1].spec.workload.scenario == "steady"
        assert cells[1].spec.cluster.num_nodes == 2
        assert cells[3].coords == {"scenario": "diurnal", "num_nodes": 2}

    def test_system_axis_accepts_names_and_specs(self):
        study = tiny_study(systems=(
            "laer",
            ("fsdp_ep", SystemSpec("laer", label="laer_raw",
                                   options={"comm_opt": False})),
        ))
        first, second = study.expand()
        assert first.spec.system_keys == ("laer",)
        assert second.spec.system_keys == ("fsdp_ep", "laer_raw")
        assert second.cell_id == "fsdp_ep+laer_raw"

    def test_scenario_params_axis(self):
        study = tiny_study(scenarios=("diurnal",),
                           scenario_params=({"period": 4}, {"period": 8}))
        cells = study.expand()
        assert [c.spec.workload.params for c in cells] == [
            {"period": 4}, {"period": 8}]
        assert cells[0].cell_id == "diurnal/period=4"

    def test_unknown_scenario_rejected_at_spec_time(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            tiny_study(scenarios=("no-such-scenario",))

    def test_invalid_cluster_sizes_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            tiny_study(cluster_sizes=(0,))
        with pytest.raises(ValueError, match="distinct"):
            tiny_study(cluster_sizes=(2, 2))

    def test_bad_param_combination_fails_at_expand_time(self):
        study = tiny_study(scenarios=("steady",),
                           scenario_params=({"period": 4},))
        with pytest.raises(ValueError, match="does not accept"):
            study.expand()

    def test_json_round_trip_is_lossless(self):
        study = StudySpec(
            name="rt",
            base=base_spec(),
            axes=StudyAxes(systems=(("fsdp_ep", "laer"),),
                           scenarios=("steady",),
                           scenario_params=({},),
                           cluster_sizes=(1, 2)),
            tags=("t1",),
            description="round trip",
        )
        assert StudySpec.from_json(study.to_json()) == study

    def test_save_and_load(self, tmp_path):
        study = tiny_study(cluster_sizes=(1, 2))
        path = study.save(tmp_path / "study.json")
        assert StudySpec.load(path) == study

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            StudySpec.from_dict({"name": "x", "bogus": 1})
        with pytest.raises(ValueError, match="unknown"):
            StudyAxes.from_dict({"sizes": [1]})


class TestRegistry:
    def test_builtins_registered(self):
        names = available_studies()
        assert "sweep-cluster-sizes" in names
        assert "sweep-scenarios" in names
        descriptions = study_descriptions()
        assert set(descriptions) == set(names)
        assert all(descriptions.values())

    def test_unknown_study_and_param_rejected(self):
        with pytest.raises(ValueError, match="unknown study"):
            registered_study("no-such-study")
        with pytest.raises(ValueError, match="does not accept"):
            make_study("sweep-cluster-sizes", bogus=1)

    def test_sweep_cluster_sizes_expands_table4_axis(self):
        study = make_study("sweep-cluster-sizes", sizes=[1, 2, 4],
                           devices_per_node=8)
        cells = study.expand()
        assert [c.spec.cluster.num_devices for c in cells] == [8, 16, 32]
        for cell in cells:
            assert cell.spec.system_keys == ("fsdp_ep", "laer")
            # Weak scaling: per-device budget constant across sizes.
            assert cell.spec.workload.tokens_per_device == \
                study.base.workload.tokens_per_device

    def test_sweep_scenarios_skips_scenarios_needing_params(self):
        study = make_study("sweep-scenarios")
        assert "trace-replay" not in study.axes.scenarios
        assert "drifting" in study.axes.scenarios
        assert "compose" in study.axes.scenarios

    def test_user_registered_study(self):
        @register_study("custom-tiny", description="registry test")
        def _build(sizes=(1,)):
            return StudySpec(name="custom-tiny", base=base_spec(),
                             axes=StudyAxes(cluster_sizes=tuple(sizes)))

        try:
            assert make_study("custom-tiny", sizes=[1, 2]).num_cells == 2
        finally:
            unregister_study("custom-tiny")
        with pytest.raises(ValueError, match="unknown study"):
            make_study("custom-tiny")


class TestStudyRunner:
    def run_tiny(self, store, **kwargs):
        study = tiny_study(cluster_sizes=(1, 2))
        return study, StudyRunner(store, parallel=False).run(study, **kwargs)

    def test_every_cell_is_persisted(self, tmp_path):
        store = ResultStore(tmp_path)
        study, report = self.run_tiny(store)
        assert len(report.cells) == 2
        assert len(report.executed) == 2 and not report.skipped
        for outcome in report.cells:
            result = store.get_result(outcome.run_id)
            assert result.spec.name == f"tiny/{outcome.cell_id}"
        entries = store.query(tag="study:tiny")
        assert len(entries) == 2

    def test_resume_skips_completed_cells(self, tmp_path):
        store = ResultStore(tmp_path)
        _, first = self.run_tiny(store)
        _, second = self.run_tiny(store)
        assert not second.executed
        assert len(second.skipped) == 2
        assert second.execution_mode == "resumed"
        assert sorted(second.run_ids) == sorted(first.run_ids)

    def test_partial_resume_executes_only_missing_cells(self, tmp_path):
        store = ResultStore(tmp_path)
        study, first = self.run_tiny(store)
        store.delete(first.cells[0].run_id)
        _, second = self.run_tiny(store)
        assert [c.cell_id for c in second.executed] == \
            [first.cells[0].cell_id]
        assert [c.cell_id for c in second.skipped] == \
            [first.cells[1].cell_id]

    def test_parallel_cell_error_is_reported_as_a_cell_error(self, tmp_path,
                                                             monkeypatch):
        # A deterministic cell failure must surface as StudyCellError, not
        # trigger the sequential "pool infrastructure failed" fallback.
        import repro.sim.engine as engine
        from repro.study import StudyCellError
        from repro.study.runner import StudyRunner as Runner

        monkeypatch.setattr(engine, "resolve_execution_mode",
                            lambda parallel, n: "parallel")
        monkeypatch.setattr("repro.study.runner.resolve_execution_mode",
                            lambda parallel, n: "parallel")
        store = ResultStore(tmp_path)
        # A workload whose trace file does not exist fails inside workers.
        bad = StudySpec(
            name="bad",
            base=base_spec(workload=WorkloadSpec(
                tokens_per_device=1024, layers=1, iterations=2, warmup=0,
                scenario="trace-replay",
                params={"path": str(tmp_path / "missing.npz")})),
            axes=StudyAxes(cluster_sizes=(1, 2)))
        with pytest.raises(StudyCellError, match="failed"):
            Runner(store, parallel=True).run(bad)

    def test_store_write_failure_aborts_instead_of_sequential_rerun(
            self, tmp_path, monkeypatch):
        from repro.study import StudyStoreError

        store = ResultStore(tmp_path)

        def disk_full(result, tags=()):
            raise OSError("No space left on device")

        monkeypatch.setattr(store, "put", disk_full)
        with pytest.raises(StudyStoreError, match="No space left"):
            StudyRunner(store, parallel=False).run(
                tiny_study(cluster_sizes=(1,)))

    def test_failed_cell_keeps_completed_cells_in_the_store(self, tmp_path,
                                                            monkeypatch):
        import repro.api.runner as api_runner

        store = ResultStore(tmp_path)
        study = tiny_study(cluster_sizes=(1, 2))
        real_run = api_runner.ExperimentRunner.run
        calls = {"count": 0}

        def failing_second_cell(self, spec):
            calls["count"] += 1
            if calls["count"] == 2:
                raise ValueError("simulated mid-study failure")
            return real_run(self, spec)

        monkeypatch.setattr(api_runner.ExperimentRunner, "run",
                            failing_second_cell)
        with pytest.raises(ValueError, match="mid-study"):
            StudyRunner(store, parallel=False).run(study)
        monkeypatch.undo()
        # The first cell was persisted before the failure, so the re-run
        # resumes past it and only recomputes the failed cell.
        assert len(store) == 1
        report = StudyRunner(store, parallel=False).run(study)
        assert len(report.skipped) == 1 and len(report.executed) == 1

    def test_no_resume_re_executes(self, tmp_path):
        store = ResultStore(tmp_path)
        _, first = self.run_tiny(store)
        _, second = self.run_tiny(store, resume=False)
        assert len(second.executed) == 2

    def test_tags_are_part_of_run_identity(self, tmp_path):
        store = ResultStore(tmp_path)
        study = tiny_study(cluster_sizes=(1,))
        runner = StudyRunner(store, parallel=False)
        first = runner.run(study, tags=["v1"])
        second = runner.run(study, tags=["v2"])
        assert len(second.executed) == 1  # different tag set, no resume
        assert first.run_ids != second.run_ids
        assert store.query(tag="v1") and store.query(tag="v2")

    def test_stored_run_id_matches_content_hash(self, tmp_path):
        store = ResultStore(tmp_path)
        study = tiny_study(cluster_sizes=(1,))
        report = StudyRunner(store, parallel=False).run(study)
        (cell,) = study.expand()
        expected = run_id_for(
            cell.spec, StudyRunner(store).run_tags(study))
        assert report.run_ids == [expected]

    def test_sequential_matches_parallel_request(self, tmp_path):
        # The parallel request demotes (2 cells) but must produce identical
        # stored numbers either way.
        sequential = ResultStore(tmp_path / "seq")
        parallel = ResultStore(tmp_path / "par")
        study = tiny_study(cluster_sizes=(1, 2))
        StudyRunner(sequential, parallel=False).run(study)
        StudyRunner(parallel, parallel=True).run(study)
        for run_id in ResultStore(tmp_path / "seq").run_ids():
            a = sequential.get_result(run_id)
            b = parallel.get_result(run_id)
            assert a.to_dict()["systems"] == b.to_dict()["systems"]

    def test_systems_by_cluster_size_grid_persists_every_cell(self, tmp_path):
        # The acceptance shape: a systems x cluster-size grid where every
        # cell lands in the store and a re-run resumes through all of them.
        store = ResultStore(tmp_path)
        study = StudySpec(
            name="grid", base=base_spec(),
            axes=StudyAxes(systems=(("fsdp_ep",), ("fsdp_ep", "laer")),
                           cluster_sizes=(1, 2)))
        runner = StudyRunner(store, parallel=False)
        report = runner.run(study)
        assert len(report.executed) == 4
        assert {c.cell_id for c in report.cells} == {
            "fsdp_ep/n1x4", "fsdp_ep/n2x4",
            "fsdp_ep+laer/n1x4", "fsdp_ep+laer/n2x4"}
        for outcome in report.cells:
            assert outcome.run_id in store
        again = runner.run(study)
        assert not again.executed and len(again.skipped) == 4
        diff = store.diff(report.cells[0].run_id, report.cells[1].run_id)
        assert diff.find("fsdp_ep", "throughput") is not None

    def test_report_summary_mentions_counts(self, tmp_path):
        store = ResultStore(tmp_path)
        _, report = self.run_tiny(store)
        summary = report.summary()
        assert "executed 2" in summary and "skipped 0" in summary


class TestRunStudyConvenience:
    def test_run_study_wrapper(self, tmp_path):
        store = ResultStore(tmp_path)
        report = run_study(tiny_study(cluster_sizes=(1,)), store,
                           parallel=False)
        assert len(report.executed) == 1
        assert not run_study(tiny_study(cluster_sizes=(1,)), store,
                             parallel=False).executed


class TestCellCorrectness:
    def test_cell_results_match_direct_experiment_run(self, tmp_path):
        from repro.api import ExperimentRunner

        store = ResultStore(tmp_path)
        study = tiny_study(cluster_sizes=(2,))
        report = StudyRunner(store, parallel=False).run(study)
        stored = store.get_result(report.run_ids[0])
        direct = ExperimentRunner(parallel=False).run(study.expand()[0].spec)
        assert stored.to_dict()["systems"] == direct.to_dict()["systems"]
        assert np.isclose(stored.systems["laer"].throughput,
                          direct.systems["laer"].throughput)
