"""Tests for the expert layout tuner (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.cost_model import MoECostModel
from repro.core.layout import static_ep_layout
from repro.core.layout_tuner import ExpertLayoutTuner, TunerConfig
from repro.core.lite_routing import lite_route
from repro.workloads.model_configs import tiny_test_config
from repro.workloads.routing_traces import RoutingTraceConfig, SyntheticRoutingTraceGenerator


@pytest.fixture
def tuner(small_topology, small_cost_model):
    return ExpertLayoutTuner(small_topology, small_cost_model, capacity=2)


def skewed_routing(num_devices=8, num_experts=8, seed=0):
    generator = SyntheticRoutingTraceGenerator(RoutingTraceConfig(
        num_devices=num_devices, num_experts=num_experts, num_layers=1,
        tokens_per_device=2048, top_k=2, skew=0.3, seed=seed))
    return generator.generate(1).layer(0, 0)


class TestTunerConfig:
    def test_defaults(self):
        cfg = TunerConfig()
        assert cfg.num_candidates == 2
        assert cfg.use_priority_queue and cfg.use_even

    def test_validation(self):
        with pytest.raises(ValueError):
            TunerConfig(num_candidates=0)
        with pytest.raises(ValueError):
            TunerConfig(use_priority_queue=False, use_even=False)
        with pytest.raises(ValueError):
            TunerConfig(max_perturbation_moves=0)


class TestCandidateGeneration:
    def test_two_analytic_schemes(self, tuner):
        loads = np.array([100.0, 50, 25, 12, 6, 3, 2, 1])
        schemes = tuner.candidate_replica_schemes(loads, 8)
        assert len(schemes) == 2
        assert all(s.sum() == 16 for s in schemes)

    def test_perturbations_added(self, small_topology, small_cost_model):
        tuner = ExpertLayoutTuner(small_topology, small_cost_model, capacity=2,
                                  config=TunerConfig(num_candidates=5))
        schemes = tuner.candidate_replica_schemes(np.ones(8), 8)
        assert len(schemes) == 5
        assert all(s.sum() == 16 and np.all(s >= 1) for s in schemes)


class TestSolve:
    def test_result_is_valid(self, tuner, small_topology, small_cost_model):
        routing = skewed_routing()
        result = tuner.solve(routing)
        result.layout.validate()
        small_cost_model.check_constraints(result.layout, result.routing_plan,
                                           routing)
        assert result.candidates_evaluated == 2
        assert len(result.candidate_costs) == 2
        assert result.cost.total == pytest.approx(min(result.candidate_costs))

    def test_beats_static_ep_on_skewed_load(self, tuner, small_topology,
                                            small_cost_model):
        """The tuned layout must cost no more than the static EP baseline."""
        routing = skewed_routing(seed=3)
        tuned = tuner.solve(routing)
        static = static_ep_layout(8, 8, 2)
        static_plan = lite_route(routing, static, small_topology)
        static_cost = small_cost_model.evaluate(static_plan)
        assert tuned.cost.total <= static_cost.total + 1e-12
        assert tuned.cost.max_tokens <= static_cost.max_tokens

    def test_near_ideal_balance_on_skewed_load(self, tuner):
        routing = skewed_routing(seed=5)
        result = tuner.solve(routing)
        ideal = routing.sum() / 8
        assert result.cost.max_tokens <= 1.35 * ideal

    def test_balanced_load_stays_balanced(self, tuner):
        routing = np.full((8, 8), 512, dtype=np.int64)
        result = tuner.solve(routing)
        ideal = routing.sum() / 8
        assert result.cost.max_tokens == pytest.approx(ideal, rel=0.05)

    def test_multi_scheme_no_worse_than_single(self, small_topology,
                                               small_cost_model):
        """Using both schemes can only improve on either alone (Fig. 12)."""
        routing = skewed_routing(seed=9)
        both = ExpertLayoutTuner(small_topology, small_cost_model, 2,
                                 TunerConfig(num_candidates=2)).solve(routing)
        pq_only = ExpertLayoutTuner(
            small_topology, small_cost_model, 2,
            TunerConfig(num_candidates=1, use_even=False)).solve(routing)
        even_only = ExpertLayoutTuner(
            small_topology, small_cost_model, 2,
            TunerConfig(num_candidates=1, use_priority_queue=False)).solve(routing)
        assert both.cost.total <= pq_only.cost.total + 1e-12
        assert both.cost.total <= even_only.cost.total + 1e-12

    def test_shape_validation(self, tuner):
        with pytest.raises(ValueError):
            tuner.solve(np.zeros((3, 8), dtype=np.int64))

    def test_capacity_validation(self, small_topology, small_cost_model):
        with pytest.raises(ValueError):
            ExpertLayoutTuner(small_topology, small_cost_model, capacity=0)


class TestReset:
    def test_reset_reseeds_perturbation_stream(self, small_topology,
                                               small_cost_model):
        """After reset(), the tuner draws the same perturbation candidates."""
        tuner = ExpertLayoutTuner(small_topology, small_cost_model, 2,
                                  TunerConfig(num_candidates=5))
        routing = skewed_routing(seed=4)
        first = [tuner.solve(routing).candidate_costs for _ in range(3)]
        tuner.reset()
        second = [tuner.solve(routing).candidate_costs for _ in range(3)]
        assert first == second


class TestBatchEval:
    @pytest.mark.parametrize("candidates", [2, 4, 8])
    def test_batched_solve_is_bit_identical_to_scalar(
            self, small_topology, small_cost_model, candidates):
        routing = skewed_routing(seed=candidates)
        batched = ExpertLayoutTuner(
            small_topology, small_cost_model, 2,
            TunerConfig(num_candidates=candidates,
                        batch_eval=True)).solve(routing)
        scalar = ExpertLayoutTuner(
            small_topology, small_cost_model, 2,
            TunerConfig(num_candidates=candidates,
                        batch_eval=False)).solve(routing)
        # Not approx: the batched path must be the same arithmetic.
        assert batched.candidate_costs == scalar.candidate_costs
        assert batched.cost.total == scalar.cost.total
        assert batched.cost.comm_time == scalar.cost.comm_time
        assert np.array_equal(batched.routing_plan, scalar.routing_plan)
        assert np.array_equal(batched.layout.assignment,
                              scalar.layout.assignment)

    def test_tie_breaks_pick_the_first_candidate(self, small_topology,
                                                 small_cost_model):
        """Equal-cost candidates resolve identically on both paths."""
        routing = np.full((8, 8), 64, dtype=np.int64)
        batched = ExpertLayoutTuner(
            small_topology, small_cost_model, 2,
            TunerConfig(batch_eval=True)).solve(routing)
        scalar = ExpertLayoutTuner(
            small_topology, small_cost_model, 2,
            TunerConfig(batch_eval=False)).solve(routing)
        assert np.array_equal(batched.layout.assignment,
                              scalar.layout.assignment)

    def test_batch_eval_emits_planner_span(self, small_topology,
                                           small_cost_model, tmp_path):
        from repro.telemetry import trace as trace_mod
        tracer = trace_mod.Tracer(tmp_path / "trace", scope="test")
        trace_mod.install(tracer)
        try:
            ExpertLayoutTuner(
                small_topology, small_cost_model, 2,
                TunerConfig(num_candidates=4)).solve(skewed_routing(seed=1))
        finally:
            trace_mod.uninstall()
        events = trace_mod.read_events(tmp_path / "trace")
        spans = [e for e in events if e.get("name") == "planner.batch-eval"]
        assert spans and spans[0]["attrs"]["candidates"] == 4
