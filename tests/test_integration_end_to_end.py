"""Cross-module integration tests tying the reproduction together.

These tests walk the same paths the benchmark harness uses: extract a routing
trace from a real (small) training run, feed it through the planner and the
iteration simulator, and check the paper's qualitative claims end to end.
"""

import numpy as np
import pytest

from repro.analysis.breakdown import breakdown_table_from_runs
from repro.cluster.topology import ClusterTopology
from repro.core.comm_analysis import fsep_to_fsdp_volume_ratio
from repro.sim.engine import compare_systems
from repro.sim.systems import make_system
from repro.training.trainer import Trainer, TrainerConfig
from repro.workloads.datasets import SyntheticTextDataset, WIKITEXT_LIKE
from repro.workloads.model_configs import get_model_config, tiny_test_config
from repro.workloads.routing_traces import RoutingTrace


@pytest.fixture(scope="module")
def training_trace():
    """A routing trace extracted from an actual small training run."""
    dataset = SyntheticTextDataset(WIKITEXT_LIKE)
    trainer = Trainer(tiny_test_config(),
                      TrainerConfig(batch_size=4, seq_length=32, num_devices=8,
                                    learning_rate=3e-3, seed=11),
                      dataset)
    result = trainer.train(6)
    return result.routing_trace


class TestTraceToSimulatorPipeline:
    def test_extracted_trace_is_consumable(self, training_trace):
        assert isinstance(training_trace, RoutingTrace)
        assert training_trace.num_devices == 8
        assert training_trace.num_experts == 8

    def test_real_trace_shows_imbalance(self, training_trace):
        """Fig. 1(a): real gating produces imbalanced expert loads."""
        assert training_trace.mean_imbalance() > 1.15

    def test_systems_run_on_real_trace(self, training_trace):
        # Scale the small run's routing counts up to a production batch size so
        # the overlap condition (Eq. 1) holds, then compare the systems.
        trace = training_trace.scaled(512)
        topology = ClusterTopology(num_nodes=2, devices_per_node=4)
        config = get_model_config("mixtral-8x7b-e8k2")
        systems = [make_system(name, config, topology,
                               tokens_per_device=trace.tokens_per_device)
                   for name in ("fsdp_ep", "laer")]
        results = compare_systems(systems, trace, warmup=1)
        assert results["laer"].throughput >= results["fsdp_ep"].throughput * 0.95

    def test_breakdown_table_from_real_trace(self, training_trace):
        trace = training_trace.scaled(512)
        topology = ClusterTopology(num_nodes=2, devices_per_node=4)
        config = get_model_config("mixtral-8x7b-e8k2")
        systems = [make_system(name, config, topology,
                               tokens_per_device=trace.tokens_per_device)
                   for name in ("fsdp_ep", "flexmoe", "laer")]
        results = compare_systems(systems, trace, warmup=1)
        table = breakdown_table_from_runs(results)
        rows = table.as_rows()
        assert {row["system"] for row in rows} == {"fsdp_ep", "flexmoe", "laer"}
        assert table.all_to_all_fraction("laer") <= table.all_to_all_fraction(
            "fsdp_ep") + 1e-9


class TestScalabilityClaim:
    def test_speedup_stable_across_cluster_sizes(self):
        """Table 4: the MLP speedup stays roughly constant from 8 to 32+ GPUs."""
        from repro.workloads.routing_traces import (
            RoutingTraceConfig, SyntheticRoutingTraceGenerator)
        config = get_model_config("mixtral-8x7b-e8k2")
        base = SyntheticRoutingTraceGenerator(RoutingTraceConfig(
            num_devices=8, num_experts=8, num_layers=2, tokens_per_device=8192,
            top_k=2, skew=0.4, seed=31)).generate(6)
        speedups = []
        for num_devices in (8, 16, 32):
            topology = ClusterTopology.homogeneous(num_devices, devices_per_node=8)
            trace = base.remap_devices(num_devices)
            systems = [make_system(name, config, topology, tokens_per_device=8192)
                       for name in ("fsdp_ep", "laer")]
            results = compare_systems(systems, trace, warmup=1)
            speedups.append(results["laer"].speedup_over(results["fsdp_ep"]))
        assert all(s > 1.0 for s in speedups)
        assert max(speedups) - min(speedups) < 0.45


class TestAnalysisConsistency:
    def test_volume_ratio_example_matches_simulator(self):
        """The closed-form FSEP/FSDP ratio agrees with the simulator's costs."""
        topology = ClusterTopology.paper_cluster()
        config = get_model_config("mixtral-8x7b-e8k2")
        fsep_system = make_system("laer", config, topology, 16384)
        fsdp_system = make_system("fsdp_ep", config, topology, 16384)
        sim_ratio = (fsep_system.simulator.prefetch_time()
                     / fsdp_system.simulator.prefetch_time())
        analytic = fsep_to_fsdp_volume_ratio(32, 8)
        assert sim_ratio == pytest.approx(analytic, rel=0.35)
