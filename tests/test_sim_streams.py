"""Tests for the multi-stream event scheduler."""

import pytest

from repro.sim.streams import StreamOp, StreamScheduler


class TestStreamScheduler:
    def test_sequential_same_stream(self):
        scheduler = StreamScheduler()
        scheduler.submit(StreamOp("a", "compute", 2.0))
        scheduler.submit(StreamOp("b", "compute", 3.0))
        timeline = scheduler.run()
        assert timeline.makespan == 5.0
        assert timeline.end_of("a") == 2.0
        assert timeline.end_of("b") == 5.0

    def test_parallel_streams_overlap(self):
        scheduler = StreamScheduler()
        scheduler.submit(StreamOp("compute", "s1", 4.0))
        scheduler.submit(StreamOp("comm", "s2", 3.0))
        timeline = scheduler.run()
        assert timeline.makespan == 4.0

    def test_dependencies_respected(self):
        scheduler = StreamScheduler()
        scheduler.submit(StreamOp("a2a", "comm", 2.0))
        scheduler.submit(StreamOp("expert", "compute", 5.0, depends_on=["a2a"]))
        timeline = scheduler.run()
        assert timeline.end_of("expert") == 7.0

    def test_fig5_style_overlap(self):
        """Prefetch on a second stream hides under expert compute (Fig. 5b)."""
        scheduler = StreamScheduler()
        scheduler.submit(StreamOp("attn", "compute", 1.0))
        scheduler.submit(StreamOp("dispatch", "a2a", 0.5, depends_on=["attn"]))
        scheduler.submit(StreamOp("expert", "compute", 4.0, depends_on=["dispatch"]))
        scheduler.submit(StreamOp("prefetch", "prefetch", 3.0,
                                  depends_on=["dispatch"]))
        scheduler.submit(StreamOp("combine", "a2a", 0.5, depends_on=["expert"]))
        timeline = scheduler.run()
        # The prefetch finishes while the expert compute is still running.
        assert timeline.end_of("prefetch") < timeline.end_of("expert")
        assert timeline.makespan == timeline.end_of("combine")

    def test_stream_busy_time(self):
        scheduler = StreamScheduler()
        scheduler.submit(StreamOp("a", "s1", 2.0))
        scheduler.submit(StreamOp("b", "s1", 3.0))
        scheduler.submit(StreamOp("c", "s2", 1.0))
        timeline = scheduler.run()
        assert timeline.stream_busy_time("s1") == 5.0
        assert timeline.stream_busy_time("s2") == 1.0

    def test_as_rows_sorted_by_start(self):
        scheduler = StreamScheduler()
        scheduler.submit(StreamOp("a", "s1", 2.0))
        scheduler.submit(StreamOp("b", "s2", 1.0))
        rows = scheduler.run().as_rows()
        assert rows[0]["start"] <= rows[1]["start"]

    def test_duplicate_name_rejected(self):
        scheduler = StreamScheduler()
        scheduler.submit(StreamOp("a", "s1", 1.0))
        with pytest.raises(ValueError):
            scheduler.submit(StreamOp("a", "s1", 1.0))

    def test_unknown_dependency_rejected(self):
        scheduler = StreamScheduler()
        with pytest.raises(ValueError):
            scheduler.submit(StreamOp("b", "s1", 1.0, depends_on=["missing"]))

    def test_unknown_end_of(self):
        scheduler = StreamScheduler()
        scheduler.submit(StreamOp("a", "s1", 1.0))
        timeline = scheduler.run()
        with pytest.raises(KeyError):
            timeline.end_of("missing")

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            StreamOp("a", "s1", -1.0)

    def test_empty_timeline(self):
        assert StreamScheduler().run().makespan == 0.0
