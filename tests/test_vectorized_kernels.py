"""Scalar-vs-vectorized equivalence tests for the simulation kernels.

The vectorized kernels (matrix-form collectives, batched routing draws,
batched lite-routing splits, matrix trace transforms) must reproduce the
scalar implementations they replaced: collectives to float tolerance,
integer token splits exactly, and seeded trace generation deterministically.
The scalar references live in :mod:`repro.scalar_reference` (verbatim ports
of the pre-vectorization loops, shared with ``benchmarks/bench_perf.py``).
"""

import numpy as np
import pytest

from repro.cluster.collectives import CollectiveCostModel
from repro.cluster.topology import (
    LINK_TYPE_ORDER,
    ClusterTopology,
    group_by_node,
)
from repro.core.layout import ExpertLayout, static_ep_layout
from repro.core.lite_routing import (
    _split_evenly,
    _split_evenly_batched,
    global_even_route,
    lite_route,
    lite_route_single_rank,
)
from repro.scalar_reference import (
    scalar_all_to_all,
    scalar_lite_route,
    scalar_split_evenly,
)
from repro.workloads.routing_traces import (
    RoutingTrace,
    RoutingTraceConfig,
    draw_routing_frame,
)
from repro.workloads.scenarios import (
    ScenarioContext,
    default_runnable_scenarios,
    make_scenario,
)

RTOL = 1e-9


def random_replicated_layout(rng, num_devices, num_experts, capacity):
    """A random layout hosting every expert, some replicated."""
    assignment = np.zeros((num_devices, num_experts), dtype=np.int64)
    for expert in range(num_experts):
        hosts = rng.choice(num_devices, size=rng.integers(1, 4), replace=False)
        assignment[hosts, expert] = 1
    # Trim devices that exceed capacity.
    for dev in range(num_devices):
        over = assignment[dev].sum() - capacity
        while over > 0:
            hosted = np.nonzero(assignment[dev])[0]
            # Drop a replica only when the expert stays hosted elsewhere.
            for expert in hosted:
                if assignment[:, expert].sum() > 1:
                    assignment[dev, expert] = 0
                    over -= 1
                    break
            else:
                break
    return ExpertLayout(assignment, capacity=max(capacity, num_experts))


# ----------------------------------------------------------------------
# Topology matrices
# ----------------------------------------------------------------------
class TestTopologyMatrices:
    @pytest.fixture
    def topo(self):
        return ClusterTopology(num_nodes=4, devices_per_node=4)

    def test_matrices_match_pairwise_lookups(self, topo):
        n = topo.num_devices
        bw = topo.bandwidth_matrix()
        lat = topo.latency_matrix()
        kinds = topo.link_type_matrix()
        for i in range(n):
            for j in range(n):
                assert bw[i, j] == topo.bandwidth(i, j)
                assert lat[i, j] == topo.latency(i, j)
                assert LINK_TYPE_ORDER[kinds[i, j]] is topo.link_type(i, j)

    def test_group_slice_matches_global_ranks(self, topo):
        group = [1, 4, 9, 14]
        bw = topo.bandwidth_matrix(group)
        lat = topo.latency_matrix(group)
        kinds = topo.link_type_matrix(group)
        for a, ga in enumerate(group):
            for b, gb in enumerate(group):
                assert bw[a, b] == topo.bandwidth(ga, gb)
                assert lat[a, b] == topo.latency(ga, gb)
                assert LINK_TYPE_ORDER[kinds[a, b]] is topo.link_type(ga, gb)

    def test_full_matrices_are_cached_and_read_only(self, topo):
        first = topo.bandwidth_matrix()
        assert topo.bandwidth_matrix() is first
        assert topo.latency_matrix() is topo.latency_matrix()
        assert topo.device_nodes() is topo.device_nodes()
        with pytest.raises(ValueError):
            first[0, 0] = 1.0

    def test_device_nodes_matches_node(self, topo):
        nodes = topo.device_nodes()
        assert [topo.node(d) for d in range(topo.num_devices)] == nodes.tolist()

    def test_group_by_node_matches_scalar(self, topo):
        devices = [3, 0, 7, 12, 5, 15]
        groups = group_by_node(topo, devices)
        expected = [[] for _ in range(topo.num_nodes)]
        for dev in devices:
            expected[topo.node(dev)].append(dev)
        assert groups == expected
        with pytest.raises(ValueError):
            group_by_node(topo, [99])


# ----------------------------------------------------------------------
# Collectives
# ----------------------------------------------------------------------
class TestAllToAllEquivalence:
    @pytest.fixture
    def model(self):
        return CollectiveCostModel(ClusterTopology(num_nodes=4,
                                                   devices_per_node=4))

    def test_random_traffic_full_cluster(self, model):
        rng = np.random.default_rng(0)
        n = model.topology.num_devices
        for trial in range(10):
            traffic = rng.uniform(0.0, 1e9, size=(n, n))
            traffic[rng.uniform(size=(n, n)) < 0.3] = 0.0  # sparse rows too
            members = list(range(n))
            assert model.all_to_all(traffic) == pytest.approx(
                scalar_all_to_all(model, traffic, members), rel=RTOL)

    def test_random_traffic_random_groups(self, model):
        rng = np.random.default_rng(1)
        n = model.topology.num_devices
        for trial in range(20):
            size = int(rng.integers(1, n + 1))
            members = rng.choice(n, size=size, replace=False).tolist()
            traffic = rng.uniform(0.0, 1e8, size=(size, size))
            traffic[rng.uniform(size=(size, size)) < 0.4] = 0.0
            assert model.all_to_all(traffic, members) == pytest.approx(
                scalar_all_to_all(model, traffic, members), rel=RTOL, abs=0.0)

    def test_idle_sender_pays_no_latency(self, model):
        n = model.topology.num_devices
        traffic = np.zeros((n, n))
        traffic[0, n - 1] = 1e6  # single cross-node sender
        vec = model.all_to_all(traffic)
        assert vec == pytest.approx(scalar_all_to_all(
            model, traffic, list(range(n))), rel=RTOL)
        # The fixed inter-node latency of the only active sender is charged.
        assert vec > 1e6 / (model.topology.inter_node_bandwidth * model.efficiency)

    def test_ring_collectives_on_random_groups(self, model):
        rng = np.random.default_rng(2)
        n = model.topology.num_devices
        for trial in range(10):
            size = int(rng.integers(2, n + 1))
            members = rng.choice(n, size=size, replace=False).tolist()
            nodes = {model.topology.node(m) for m in members}
            slow = (model.topology.inter_node_bandwidth if len(nodes) > 1
                    else model.topology.intra_node_bandwidth)
            lat = (model.topology.inter_node_latency if len(nodes) > 1
                   else model.topology.intra_node_latency)
            p = len(members)
            expected = ((p - 1) * lat
                        + (p - 1) * 1e6 / (slow * model.efficiency))
            assert model.all_gather(1e6, members) == pytest.approx(
                expected, rel=RTOL)


# ----------------------------------------------------------------------
# Lite routing
# ----------------------------------------------------------------------
class TestLiteRoutingEquivalence:
    @pytest.fixture
    def topology(self):
        return ClusterTopology(num_nodes=2, devices_per_node=4)

    def test_batched_split_matches_scalar_rows(self):
        rng = np.random.default_rng(3)
        totals = rng.integers(0, 1000, size=64)
        weights = rng.integers(0, 4, size=(64, 8)).astype(np.float64)
        weights[weights.sum(axis=1) == 0, 0] = 1.0  # every row splittable
        batched = _split_evenly_batched(totals, weights)
        for row in range(64):
            assert batched[row].tolist() == scalar_split_evenly(
                int(totals[row]), weights[row]).tolist()
            assert batched[row].sum() == totals[row]

    def test_split_evenly_single_row_unchanged(self):
        assert _split_evenly(10, np.array([1, 1, 1])).tolist() == \
            scalar_split_evenly(10, np.array([1, 1, 1])).tolist()

    def test_lite_route_exactly_matches_scalar(self, topology):
        rng = np.random.default_rng(4)
        for trial in range(5):
            routing = rng.integers(0, 200, size=(8, 8)).astype(np.int64)
            routing[rng.uniform(size=(8, 8)) < 0.3] = 0
            layout = random_replicated_layout(rng, 8, 8, capacity=8)
            assert np.array_equal(
                lite_route(routing, layout, topology),
                scalar_lite_route(routing, layout, topology))

    def test_lite_route_static_layout_matches_scalar(self, topology):
        rng = np.random.default_rng(5)
        routing = rng.integers(0, 100, size=(8, 8)).astype(np.int64)
        layout = static_ep_layout(8, 8, 2)
        assert np.array_equal(lite_route(routing, layout, topology),
                              scalar_lite_route(routing, layout, topology))

    def test_single_rank_matches_batched_rows(self, topology):
        rng = np.random.default_rng(6)
        routing = rng.integers(0, 50, size=(8, 8)).astype(np.int64)
        layout = random_replicated_layout(rng, 8, 8, capacity=8)
        plan = lite_route(routing, layout, topology)
        for rank in range(8):
            assert np.array_equal(
                lite_route_single_rank(routing[rank], layout, topology, rank),
                plan[rank])

    def test_global_even_route_matches_scalar_split(self, topology):
        rng = np.random.default_rng(7)
        routing = rng.integers(0, 80, size=(8, 8)).astype(np.int64)
        layout = random_replicated_layout(rng, 8, 8, capacity=8)
        plan = global_even_route(routing, layout)
        for rank in range(8):
            for expert in range(8):
                tokens = int(routing[rank, expert])
                expected = (scalar_split_evenly(
                    tokens, layout.assignment[:, expert].astype(np.float64))
                    if tokens else np.zeros(8, dtype=np.int64))
                assert plan[rank, expert].tolist() == expected.tolist()

    def test_missing_replica_still_raises(self, topology):
        layout = ExpertLayout(np.zeros((8, 2), dtype=np.int64), capacity=1)
        with pytest.raises(ValueError, match="no replica"):
            lite_route(np.ones((8, 2), dtype=np.int64), layout, topology)


# ----------------------------------------------------------------------
# Trace kernels
# ----------------------------------------------------------------------
class TestTraceKernels:
    CONFIG = RoutingTraceConfig(num_devices=6, num_experts=8, num_layers=3,
                                tokens_per_device=512, top_k=2, seed=11)

    def test_draw_routing_frame_deterministic_and_conserving(self):
        probs = np.random.default_rng(0).dirichlet(
            [0.5] * self.CONFIG.num_experts, size=self.CONFIG.num_layers)
        a = draw_routing_frame(np.random.default_rng(42), probs, self.CONFIG)
        b = draw_routing_frame(np.random.default_rng(42), probs, self.CONFIG)
        assert np.array_equal(a, b)
        assert a.shape == (3, 6, 8)
        assert a.dtype == np.int64
        assert (a.sum(axis=2) == 512 * 2).all()

    def test_draw_without_noise_matches_per_row_multinomial(self):
        config = RoutingTraceConfig(num_devices=4, num_experts=8, num_layers=2,
                                    tokens_per_device=256, top_k=2,
                                    device_noise=0.0, seed=0)
        probs = np.random.default_rng(1).dirichlet([0.5] * 8, size=2)
        frame = draw_routing_frame(np.random.default_rng(9), probs, config)
        # Batched Generator.multinomial fills leading axes in C order, so the
        # noise-free frame equals per-(layer, device) sequential draws.
        rng = np.random.default_rng(9)
        for layer in range(2):
            for dev in range(4):
                assert np.array_equal(frame[layer, dev],
                                      rng.multinomial(512, probs[layer]))

    def test_mean_imbalance_matches_scalar_loop(self):
        rng = np.random.default_rng(12)
        routing = rng.integers(0, 64, size=(4, 3, 6, 8))
        trace = RoutingTrace(routing=routing, top_k=2, tokens_per_device=512)
        expected = np.mean([trace.imbalance(it, layer)
                            for it in range(4) for layer in range(3)])
        assert trace.mean_imbalance() == pytest.approx(expected, rel=RTOL)

    def test_mean_imbalance_zero_load_layer_counts_as_balanced(self):
        routing = np.zeros((2, 2, 4, 4), dtype=np.int64)
        routing[0, 0, 0, 0] = 8
        trace = RoutingTrace(routing=routing, top_k=1, tokens_per_device=8)
        expected = np.mean([trace.imbalance(it, layer)
                            for it in range(2) for layer in range(2)])
        assert trace.mean_imbalance() == pytest.approx(expected, rel=RTOL)

    def test_remap_devices_matches_scalar_loop(self):
        rng = np.random.default_rng(13)
        routing = rng.integers(0, 50, size=(3, 2, 6, 8))
        trace = RoutingTrace(routing=routing, top_k=2, tokens_per_device=512)
        for new_devices in (1, 4, 7, 16):
            remapped = trace.remap_devices(new_devices)
            iters, layers, _, experts = routing.shape
            expected = np.zeros((iters, layers, new_devices, experts),
                                dtype=np.int64)
            for it in range(iters):
                for layer in range(layers):
                    totals = routing[it, layer].sum(axis=0)
                    base, rem = totals // new_devices, totals % new_devices
                    expected[it, layer] = base[None, :]
                    for j in range(experts):
                        expected[it, layer, :int(rem[j]), j] += 1
            assert np.array_equal(remapped.routing, expected)
            assert remapped.tokens_per_device == int(
                expected[0, 0].sum(axis=1).max())


# ----------------------------------------------------------------------
# Seeded determinism of every registered scenario on the batched draw path
# ----------------------------------------------------------------------
class TestScenarioDeterminism:
    CTX = ScenarioContext(num_devices=4, num_experts=8, num_layers=2,
                          tokens_per_device=256, top_k=2, iterations=6,
                          seed=21)

    @pytest.mark.parametrize("name", sorted(default_runnable_scenarios()))
    def test_two_independent_builds_agree(self, name):
        first = list(make_scenario(name, self.CTX).iter_iterations())
        second = list(make_scenario(name, self.CTX).iter_iterations())
        assert len(first) == self.CTX.iterations
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("name", sorted(default_runnable_scenarios()))
    def test_seed_changes_the_draws(self, name):
        other = ScenarioContext(num_devices=4, num_experts=8, num_layers=2,
                                tokens_per_device=256, top_k=2, iterations=6,
                                seed=22)
        first = list(make_scenario(name, self.CTX).iter_iterations())
        second = list(make_scenario(name, other).iter_iterations())
        assert not all(np.array_equal(a, b) for a, b in zip(first, second))
