"""Tests for the planner's joint cost model (Sec. 3.2)."""

import numpy as np
import pytest

from repro.core.cost_model import MoECostModel
from repro.core.layout import static_ep_layout
from repro.core.lite_routing import lite_route
from repro.workloads.model_configs import get_model_config, tiny_test_config


@pytest.fixture
def cost_model(small_topology):
    return MoECostModel.from_model_config(tiny_test_config(), small_topology)


def balanced_plan(n=8, e=8, tokens=64):
    """Every device keeps its tokens locally, evenly over experts."""
    plan = np.zeros((n, e, n), dtype=np.int64)
    for device in range(n):
        plan[device, :, device] = tokens // e
    return plan


class TestCostTerms:
    def test_local_plan_has_zero_comm(self, cost_model):
        plan = balanced_plan()
        assert cost_model.comm_time(plan) == 0.0

    def test_remote_plan_has_positive_comm(self, cost_model):
        plan = balanced_plan()
        plan[0, 0, 0] = 0
        plan[0, 0, 7] = 8
        assert cost_model.comm_time(plan) > 0.0

    def test_inter_node_costs_more_than_intra(self, cost_model):
        intra = np.zeros((8, 8, 8), dtype=np.int64)
        intra[0, 0, 1] = 100
        inter = np.zeros((8, 8, 8), dtype=np.int64)
        inter[0, 0, 4] = 100
        assert cost_model.comm_time(inter) > cost_model.comm_time(intra)

    def test_comp_time_uses_max_device(self, cost_model):
        plan = balanced_plan()
        base = cost_model.comp_time(plan)
        plan[0, 0, 0] += 1000
        assert cost_model.comp_time(plan) > base

    def test_comp_time_checkpointing_factor(self, small_topology):
        config = tiny_test_config()
        plain = MoECostModel.from_model_config(config, small_topology)
        ckpt = MoECostModel.from_model_config(config, small_topology,
                                              activation_checkpointing=True)
        plan = balanced_plan()
        assert ckpt.comp_time(plan) == pytest.approx(4 / 3 * plain.comp_time(plan))

    def test_tokens_per_device(self, cost_model):
        plan = balanced_plan(tokens=64)
        assert np.all(cost_model.tokens_per_device(plan) == 64)

    def test_evaluate_consistency(self, cost_model):
        plan = balanced_plan()
        breakdown = cost_model.evaluate(plan)
        assert breakdown.total == pytest.approx(
            breakdown.comm_time + breakdown.comp_time)
        assert breakdown.max_tokens == 64

    def test_plan_validation(self, cost_model):
        with pytest.raises(ValueError):
            cost_model.comm_time(np.zeros((3, 3, 3)))
        bad = balanced_plan().astype(float)
        bad[0, 0, 0] = -1
        with pytest.raises(ValueError):
            cost_model.comm_time(bad)


class TestConstraints:
    def test_valid_plan_passes(self, small_topology, cost_model):
        routing = np.random.default_rng(0).integers(
            0, 50, size=(8, 8)).astype(np.int64)
        layout = static_ep_layout(8, 8, 2)
        plan = lite_route(routing, layout, small_topology)
        cost_model.check_constraints(layout, plan, routing)

    def test_conservation_violation_detected(self, small_topology, cost_model):
        routing = np.full((8, 8), 10, dtype=np.int64)
        layout = static_ep_layout(8, 8, 2)
        plan = lite_route(routing, layout, small_topology)
        plan[0, 0, :] = 0
        with pytest.raises(ValueError, match="conserve"):
            cost_model.check_constraints(layout, plan, routing)

    def test_placement_violation_detected(self, small_topology, cost_model):
        routing = np.full((8, 8), 10, dtype=np.int64)
        layout = static_ep_layout(8, 8, 2)
        plan = lite_route(routing, layout, small_topology)
        # Send expert 0 tokens to a device that does not host expert 0.
        bad_device = [d for d in range(8) if layout.assignment[d, 0] == 0][0]
        plan[0, 0, :] = 0
        plan[0, 0, bad_device] = 10
        with pytest.raises(ValueError, match="does not host"):
            cost_model.check_constraints(layout, plan, routing)


class TestConstruction:
    def test_from_model_config_fields(self, paper_topology):
        config = get_model_config("mixtral-8x7b-e8k2")
        model = MoECostModel.from_model_config(config, paper_topology)
        assert model.comm_bytes_per_token == config.hidden_size * 2
        assert model.compute_flops_per_token == config.expert_flops_per_token

    def test_validation(self, small_topology):
        with pytest.raises(ValueError):
            MoECostModel(small_topology, comm_bytes_per_token=-1,
                         compute_flops_per_token=1, device_flops=1)
        with pytest.raises(ValueError):
            MoECostModel(small_topology, comm_bytes_per_token=1,
                         compute_flops_per_token=0, device_flops=1)


class TestEvaluateBatch:
    def test_batch_matches_scalar_bitwise(self, small_topology,
                                          small_cost_model):
        rng = np.random.default_rng(17)
        plans = rng.integers(0, 300, size=(5, 8, 8, 8)).astype(np.int64)
        batched = small_cost_model.evaluate_batch(plans)
        for index in range(plans.shape[0]):
            scalar = small_cost_model.evaluate(plans[index])
            assert batched[index].comm_time == scalar.comm_time
            assert batched[index].comp_time == scalar.comp_time
            assert batched[index].total == scalar.total

    def test_batch_shape_validation(self, small_cost_model):
        with pytest.raises(ValueError):
            small_cost_model.evaluate_batch(np.zeros((8, 8, 8)))
        with pytest.raises(ValueError):
            small_cost_model.evaluate_batch(np.zeros((2, 8, 8, 7)))
