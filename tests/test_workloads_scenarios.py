"""Tests for the Scenario API: trace sources and the scenario registry."""

import numpy as np
import pytest

from repro.workloads.routing_traces import (
    RoutingTraceConfig,
    SyntheticRoutingTraceGenerator,
    routing_from_assignments,
)
from repro.workloads.scenarios import (
    BurstyChurnTraceSource,
    FileTraceSource,
    MixtureTraceSource,
    ScenarioContext,
    StragglerTraceSource,
    SyntheticTraceSource,
    TraceSource,
    as_trace_source,
    available_scenarios,
    make_scenario,
    register_scenario,
    registered_scenario,
    scenario_descriptions,
    unregister_scenario,
)
from repro.workloads.trace_io import save_assignments, save_trace

CTX = ScenarioContext(num_devices=4, num_experts=8, num_layers=2,
                      tokens_per_device=512, top_k=2, iterations=8, seed=5)


class TestRegistry:
    def test_at_least_six_builtins(self):
        names = available_scenarios()
        assert len(names) >= 6
        for expected in ("steady", "drifting", "bursty-churn", "diurnal",
                         "phase-shift", "straggler", "multi-tenant-mix"):
            assert expected in names

    def test_descriptions_cover_every_scenario(self):
        descriptions = scenario_descriptions()
        assert set(descriptions) == set(available_scenarios())
        assert all(descriptions.values())

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            registered_scenario("no-such-scenario")
        with pytest.raises(ValueError, match="unknown scenario"):
            make_scenario("no-such-scenario", CTX)

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="does not accept parameter"):
            make_scenario("steady", CTX, bogus=1)
        with pytest.raises(ValueError, match="does not accept parameter"):
            make_scenario("bursty-churn", CTX, burst_len=2)

    def test_bad_param_value_rejected(self):
        with pytest.raises(ValueError):
            make_scenario("bursty-churn", CTX, period=1)
        with pytest.raises(ValueError):
            make_scenario("straggler", CTX, num_failed=CTX.num_devices)
        with pytest.raises(ValueError):
            make_scenario("multi-tenant-mix", CTX, tenants=1)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_scenario("steady")
            def _factory(ctx):  # pragma: no cover - never invoked
                raise AssertionError

    def test_user_registered_scenario(self):
        @register_scenario("custom-steady", description="registry test")
        def _build(ctx, skew_override=0.3):
            return SyntheticTraceSource(
                ctx.trace_config(drift=0.0, churn_prob=0.0,
                                 skew=skew_override), ctx.iterations)

        try:
            source = make_scenario("custom-steady", CTX, skew_override=0.2)
            frames = list(source.iter_iterations())
            assert len(frames) == CTX.iterations
        finally:
            unregister_scenario("custom-steady")
        with pytest.raises(ValueError, match="unknown scenario"):
            make_scenario("custom-steady", CTX)

    def test_lookup_is_case_insensitive(self):
        assert registered_scenario("STEADY").name == "steady"


class TestBuiltinSources:
    @pytest.mark.parametrize("name", [
        "steady", "drifting", "bursty-churn", "diurnal", "phase-shift",
        "straggler", "multi-tenant-mix", "compose",
    ])
    def test_shapes_dtype_and_token_conservation(self, name):
        source = make_scenario(name, CTX)
        assert isinstance(source, TraceSource)
        assert source.num_iterations == CTX.iterations
        assert (source.num_layers, source.num_devices, source.num_experts) \
            == (CTX.num_layers, CTX.num_devices, CTX.num_experts)
        assert source.tokens_per_device == CTX.tokens_per_device
        assert source.top_k == CTX.top_k
        expected_total = (CTX.num_devices * CTX.tokens_per_device * CTX.top_k)
        frames = list(source.iter_iterations())
        assert len(frames) == CTX.iterations
        for frame in frames:
            assert frame.shape == (CTX.num_layers, CTX.num_devices,
                                   CTX.num_experts)
            assert frame.dtype == np.int64
            assert (frame >= 0).all()
            # Global token count is conserved per layer in every scenario.
            assert (frame.sum(axis=(1, 2)) == expected_total).all()

    @pytest.mark.parametrize("name", [
        "steady", "drifting", "bursty-churn", "diurnal", "phase-shift",
        "straggler", "multi-tenant-mix", "compose",
    ])
    def test_restartable_fork_and_materialize_agree(self, name):
        source = make_scenario(name, CTX)
        first = list(source.iter_iterations())
        second = list(source.iter_iterations())          # restartable
        forked = list(source.fork().iter_iterations())   # independent copy
        trace = source.materialize()
        assert trace.num_iterations == CTX.iterations
        for it in range(CTX.iterations):
            assert np.array_equal(first[it], second[it])
            assert np.array_equal(first[it], forked[it])
            assert np.array_equal(first[it], trace.iteration(it))

    def test_seed_changes_the_stream(self):
        a = make_scenario("drifting", CTX)
        b = make_scenario("drifting", ScenarioContext(
            num_devices=4, num_experts=8, num_layers=2, tokens_per_device=512,
            top_k=2, iterations=8, seed=6))
        assert not all(np.array_equal(x, y) for x, y in
                       zip(a.iter_iterations(), b.iter_iterations()))

    def test_drifting_matches_legacy_generator(self):
        """The default scenario reproduces the historical synthetic trace."""
        config = CTX.trace_config()
        legacy = SyntheticRoutingTraceGenerator(config).generate(CTX.iterations)
        source = make_scenario("drifting", CTX)
        assert np.array_equal(source.materialize().routing, legacy.routing)

    def test_steady_popularity_is_stationary(self):
        source = make_scenario("steady", CTX)
        frames = list(source.iter_iterations())
        # Expert popularity shares stay close across iterations (only
        # multinomial sampling noise, no drift of the underlying profile).
        shares = [f[0].sum(axis=0) / f[0].sum() for f in frames]
        spread = np.abs(shares[0] - shares[-1]).max()
        assert spread < 0.05

    def test_bursty_churn_reshuffles_inside_bursts(self):
        source = BurstyChurnTraceSource(CTX.trace_config(drift=0.0),
                                        iterations=12, period=6,
                                        burst_length=2)
        frames = list(source.iter_iterations())
        hottest = [int(np.argmax(f[0].sum(axis=0))) for f in frames]
        calm = [hottest[it] for it in range(12) if not source.in_burst(it)]
        # With zero drift the calm phases keep a stable hotspot per regime;
        # the trace still changes hotspot identity at least once overall.
        assert len(set(hottest)) > 1
        assert len(calm) > len(set(calm))

    def test_straggler_windows_zero_failed_devices(self):
        inner = SyntheticTraceSource(CTX.trace_config(), CTX.iterations)
        source = StragglerTraceSource(inner, period=4, duration=1,
                                      num_failed=1)
        frames = list(source.iter_iterations())
        inner_frames = list(inner.iter_iterations())
        for it, frame in enumerate(frames):
            failed = source.failed_devices(it)
            if failed:
                assert (frame[:, failed, :] == 0).all()
                # Global expert load is preserved through redistribution.
                assert np.array_equal(frame.sum(axis=1),
                                      inner_frames[it].sum(axis=1))
            else:
                assert np.array_equal(frame, inner_frames[it])

    def test_straggler_rotates_failed_devices(self):
        inner = SyntheticTraceSource(CTX.trace_config(), CTX.iterations)
        source = StragglerTraceSource(inner, period=4, duration=1,
                                      num_failed=1)
        assert source.failed_devices(0) != source.failed_devices(4)

    def test_multi_tenant_mix_sums_component_budgets(self):
        source = make_scenario("multi-tenant-mix", CTX, tenants=3)
        assert isinstance(source, MixtureTraceSource)
        assert len(source.components) == 3
        assert source.tokens_per_device == CTX.tokens_per_device
        components = [list(c.iter_iterations()) for c in source.components]
        for it, frame in enumerate(source.iter_iterations()):
            assert np.array_equal(frame,
                                  sum(comp[it] for comp in components))

    def test_mixture_rejects_mismatched_components(self):
        a = SyntheticTraceSource(CTX.trace_config(), CTX.iterations)
        b = SyntheticTraceSource(CTX.trace_config(num_experts=16),
                                 CTX.iterations)
        with pytest.raises(ValueError, match="mixture components"):
            MixtureTraceSource((a, b))


class TestFileTraceSource:
    def test_lazy_round_trip(self, tmp_path):
        trace = SyntheticTraceSource(CTX.trace_config(),
                                     CTX.iterations).materialize()
        path = save_trace(trace, tmp_path / "trace.npz")
        source = FileTraceSource(path)
        assert source.num_iterations == trace.num_iterations
        assert source.tokens_per_device == trace.tokens_per_device
        for frame, expected in zip(source.iter_iterations(),
                                   trace.iter_iterations()):
            assert np.array_equal(frame, expected)
        assert np.array_equal(source.fork().materialize().routing,
                              trace.routing)

    def test_missing_file_fails_on_first_access(self, tmp_path):
        source = FileTraceSource(tmp_path / "missing.npz")  # cheap to build
        with pytest.raises(FileNotFoundError):
            source.num_iterations


class TestAsTraceSource:
    def test_passthrough_for_sources(self):
        source = SyntheticTraceSource(CTX.trace_config(), 4)
        assert as_trace_source(source) is source
        trace = source.materialize()
        assert as_trace_source(trace) is trace

    def test_frame_sequence_tokens_per_device(self):
        """tokens_per_device is the worst per-device count, not expert load."""
        frames = [np.full((2, 4, 8), 25, dtype=np.int64) for _ in range(3)]
        source = as_trace_source(frames)
        assert source.num_iterations == 3
        assert source.tokens_per_device == 25 * 8   # sum over the expert axis
        assert source.num_devices == 4


class TestRoutingTraceAsSource:
    def test_trace_satisfies_protocol(self):
        trace = SyntheticTraceSource(CTX.trace_config(), 4).materialize()
        assert isinstance(trace, TraceSource)
        frames = list(trace.iter_iterations())
        assert len(frames) == 4
        assert trace.fork() is trace
        assert trace.materialize() is trace
        assert np.array_equal(frames[2], trace.iteration(2))


class TestTraceReplayScenario:
    """The trace-driven scenario: recorded assignments -> routing frames."""

    def record(self, tmp_path, iterations=3, layers=2, devices=4, slots=1024,
               experts=8, seed=0):
        rng = np.random.default_rng(seed)
        assignments = rng.integers(
            0, experts, size=(iterations, layers, devices, slots))
        return save_assignments(assignments, tmp_path / "rec.npz"), assignments

    def test_replay_matches_routing_from_assignments(self, tmp_path):
        path, assignments = self.record(tmp_path)
        source = make_scenario("trace-replay", CTX, path=str(path))
        frames = list(source.iter_iterations())
        assert len(frames) == CTX.iterations
        expected = routing_from_assignments(
            list(assignments[0, 0]), CTX.num_experts)
        assert np.array_equal(frames[0][0], expected)
        # tokens_per_device derives from the recording (slots / top_k).
        assert source.tokens_per_device == 1024 // CTX.top_k

    def test_replay_cycles_when_recording_is_short(self, tmp_path):
        path, _ = self.record(tmp_path, iterations=3)
        source = make_scenario("trace-replay", CTX, path=str(path))
        frames = list(source.iter_iterations())
        assert np.array_equal(frames[0], frames[3])
        assert not np.array_equal(frames[0], frames[1])

    def test_scale_multiplies_counts(self, tmp_path):
        path, _ = self.record(tmp_path)
        base = make_scenario("trace-replay", CTX, path=str(path))
        scaled = make_scenario("trace-replay", CTX, path=str(path), scale=3)
        first = next(iter(base.iter_iterations()))
        assert np.array_equal(next(iter(scaled.iter_iterations())), 3 * first)

    def test_device_remap_preserves_global_expert_loads(self, tmp_path):
        path, _ = self.record(tmp_path, devices=2)
        source = make_scenario("trace-replay", CTX, path=str(path))
        frame = next(iter(source.iter_iterations()))
        assert frame.shape[1] == CTX.num_devices
        # tokens_per_device stays in *token* units after the remap: the
        # 2-device 1024-slot recording spread over 4 devices is ~512 slots
        # = ~256 tokens each (plus at most one remainder slot per expert),
        # NOT ~512 "tokens" (the slot count, which would double throughput).
        lower = 2 * 1024 // 4 // CTX.top_k
        upper = -(-(2 * 1024 // 4 + CTX.num_experts) // CTX.top_k)
        assert lower <= source.tokens_per_device <= upper
        recorded = make_scenario(
            "trace-replay",
            ScenarioContext(num_devices=2, num_experts=8, num_layers=2,
                            tokens_per_device=512, top_k=2, iterations=8),
            path=str(path))
        original = next(iter(recorded.iter_iterations()))
        assert np.array_equal(frame.sum(axis=1), original.sum(axis=1))

    def test_missing_path_is_a_value_error(self):
        with pytest.raises(ValueError, match="requires parameter"):
            make_scenario("trace-replay", CTX)

    def test_lazy_and_fork_pickle_safe(self, tmp_path):
        import pickle

        path, _ = self.record(tmp_path)
        source = make_scenario("trace-replay", CTX, path=str(path))
        first = list(source.iter_iterations())
        forked = list(source.fork().iter_iterations())
        pickled = list(pickle.loads(pickle.dumps(source)).iter_iterations())
        for a, b, c in zip(first, forked, pickled):
            assert np.array_equal(a, b) and np.array_equal(a, c)

    def test_out_of_range_expert_rejected(self, tmp_path):
        assignments = np.full((1, 2, 4, 64), 9)  # expert 9 of 8
        path = save_assignments(assignments, tmp_path / "bad.npz")
        source = make_scenario("trace-replay", CTX, path=str(path))
        with pytest.raises(ValueError, match="only"):
            list(source.iter_iterations())


class TestComposeScenario:
    def test_default_is_straggler_on_diurnal(self):
        composed = make_scenario("compose", CTX)
        manual = StragglerTraceSource(
            make_scenario("diurnal", CTX))
        for a, b in zip(composed.iter_iterations(),
                        manual.iter_iterations()):
            assert np.array_equal(a, b)

    def test_base_params_and_wrapper_params_forwarded(self):
        composed = make_scenario(
            "compose", CTX, base="diurnal", base_params={"period": 4},
            wrappers=[{"name": "straggler",
                       "params": {"period": 3, "duration": 1}}])
        manual = StragglerTraceSource(
            make_scenario("diurnal", CTX, period=4), period=3, duration=1)
        for a, b in zip(composed.iter_iterations(),
                        manual.iter_iterations()):
            assert np.array_equal(a, b)

    def test_wrappers_stack_in_order(self):
        composed = make_scenario(
            "compose", CTX, base="steady",
            wrappers=["straggler", "tenant-overlay"])
        frames = list(composed.iter_iterations())
        assert len(frames) == CTX.iterations
        # The overlay adds a second tenant's tokens on top.
        assert composed.tokens_per_device > CTX.tokens_per_device

    def test_self_composition_rejected(self):
        with pytest.raises(ValueError, match="itself"):
            make_scenario("compose", CTX, base="compose")

    def test_unknown_wrapper_and_bad_entries_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario wrapper"):
            make_scenario("compose", CTX, wrappers=["no-such-wrapper"])
        with pytest.raises(ValueError, match="'name'"):
            make_scenario("compose", CTX, wrappers=[{"params": {}}])
        with pytest.raises(ValueError, match="only 'name' and 'params'"):
            make_scenario("compose", CTX,
                          wrappers=[{"name": "straggler", "extra": 1}])
        with pytest.raises(ValueError, match="does not accept"):
            make_scenario("compose", CTX,
                          wrappers=[{"name": "straggler",
                                     "params": {"bogus": 1}}])

    def test_user_registered_wrapper(self):
        from repro.workloads.scenarios import (
            _WRAPPER_REGISTRY,
            available_scenario_wrappers,
            register_scenario_wrapper,
        )

        @register_scenario_wrapper("double", description="wrapper test")
        def _double(inner, ctx):
            trace = inner.materialize()
            trace.routing = trace.routing * 2
            return trace

        try:
            assert "double" in available_scenario_wrappers()
            composed = make_scenario("compose", CTX, base="steady",
                                     wrappers=["double"])
            base = make_scenario("steady", CTX)
            assert np.array_equal(
                next(iter(composed.iter_iterations())),
                2 * next(iter(base.iter_iterations())))
        finally:
            _WRAPPER_REGISTRY.pop("double", None)

    def test_compose_usable_from_workload_spec(self):
        from repro.api import WorkloadSpec

        workload = WorkloadSpec(
            tokens_per_device=1024, layers=1, iterations=2, warmup=0,
            scenario="compose",
            params={"base": "diurnal",
                    "wrappers": [{"name": "straggler",
                                  "params": {"period": 4}}]})
        source = workload.make_source(num_devices=4)
        frames = list(source.iter_iterations())
        assert len(frames) == 2
