"""Shared test helpers: finite-difference gradient checking."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.model.parameter import Module, Parameter


def numerical_grad(loss_fn: Callable[[], float], array: np.ndarray,
                   eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``loss_fn`` with respect to ``array``.

    ``array`` is perturbed in place (and restored), so ``loss_fn`` must read it
    on every call.
    """
    grad = np.zeros_like(array)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for idx in range(flat.size):
        original = flat[idx]
        flat[idx] = original + eps
        plus = loss_fn()
        flat[idx] = original - eps
        minus = loss_fn()
        flat[idx] = original
        grad_flat[idx] = (plus - minus) / (2 * eps)
    return grad


def check_parameter_gradients(module: Module, loss_fn: Callable[[], float],
                              backward_fn: Callable[[], None],
                              rtol: float = 1e-4, atol: float = 1e-6,
                              max_elements: int = 40,
                              rng: np.random.Generator | None = None) -> None:
    """Compare analytic parameter gradients against finite differences.

    To keep runtime manageable only a random subset of ``max_elements`` scalar
    entries per parameter is checked.
    """
    rng = rng or np.random.default_rng(0)
    module.zero_grad()
    backward_fn()
    analytic = {name: p.grad.copy() for name, p in module.named_parameters()}
    for name, param in module.named_parameters():
        flat = param.value.reshape(-1)
        count = min(max_elements, flat.size)
        indices = rng.choice(flat.size, size=count, replace=False)
        for idx in indices:
            original = flat[idx]
            eps = 1e-6 * max(1.0, abs(original))
            flat[idx] = original + eps
            plus = loss_fn()
            flat[idx] = original - eps
            minus = loss_fn()
            flat[idx] = original
            numeric = (plus - minus) / (2 * eps)
            actual = analytic[name].reshape(-1)[idx]
            assert np.isclose(actual, numeric, rtol=rtol, atol=atol), (
                f"gradient mismatch for {name}[{idx}]: "
                f"analytic={actual}, numeric={numeric}")


def check_input_gradient(forward_loss: Callable[[np.ndarray], float],
                         analytic_grad: np.ndarray, x: np.ndarray,
                         rtol: float = 1e-4, atol: float = 1e-6,
                         max_elements: int = 40,
                         rng: np.random.Generator | None = None) -> None:
    """Compare an analytic input gradient against finite differences."""
    rng = rng or np.random.default_rng(0)
    flat = x.reshape(-1)
    grad_flat = analytic_grad.reshape(-1)
    count = min(max_elements, flat.size)
    indices = rng.choice(flat.size, size=count, replace=False)
    for idx in indices:
        original = flat[idx]
        eps = 1e-6 * max(1.0, abs(original))
        flat[idx] = original + eps
        plus = forward_loss(x)
        flat[idx] = original - eps
        minus = forward_loss(x)
        flat[idx] = original
        numeric = (plus - minus) / (2 * eps)
        assert np.isclose(grad_flat[idx], numeric, rtol=rtol, atol=atol), (
            f"input gradient mismatch at {idx}: "
            f"analytic={grad_flat[idx]}, numeric={numeric}")


def random_parameter(shape, seed: int = 0) -> Parameter:
    """A Parameter with deterministic random contents."""
    rng = np.random.default_rng(seed)
    return Parameter(rng.normal(0.0, 1.0, size=shape))
