"""Tests for the top-k gate and the auxiliary load-balancing loss."""

import numpy as np
import pytest

from repro.model.gating import TopKGate, switch_load_balancing_loss
from repro.model.layers import softmax


def make_gate(hidden=8, experts=4, top_k=2, seed=0):
    return TopKGate(hidden, experts, top_k, rng=np.random.default_rng(seed))


class TestForward:
    def test_output_shapes(self):
        gate = make_gate()
        x = np.random.default_rng(0).normal(size=(10, 8))
        out, _ = gate.forward(x)
        assert out.expert_indices.shape == (10, 2)
        assert out.gate_weights.shape == (10, 2)
        assert out.full_probs.shape == (10, 4)
        assert out.expert_counts.shape == (4,)

    def test_gate_weights_sum_to_one(self):
        gate = make_gate()
        x = np.random.default_rng(1).normal(size=(16, 8))
        out, _ = gate.forward(x)
        assert np.allclose(out.gate_weights.sum(axis=-1), 1.0)

    def test_topk_selects_largest_logits(self):
        gate = make_gate(top_k=2)
        x = np.random.default_rng(2).normal(size=(8, 8))
        out, cache = gate.forward(x)
        logits = cache["logits"]
        for t in range(8):
            top_true = set(np.argsort(-logits[t])[:2])
            assert set(out.expert_indices[t]) == top_true

    def test_indices_sorted_by_logit(self):
        gate = make_gate(top_k=3, experts=6)
        x = np.random.default_rng(3).normal(size=(5, 8))
        out, cache = gate.forward(x)
        logits = cache["logits"]
        row = np.arange(5)[:, None]
        selected = logits[row, out.expert_indices]
        assert np.all(np.diff(selected, axis=-1) <= 1e-12)

    def test_counts_match_indices(self):
        gate = make_gate()
        x = np.random.default_rng(4).normal(size=(32, 8))
        out, _ = gate.forward(x)
        manual = np.bincount(out.expert_indices.reshape(-1), minlength=4)
        assert np.array_equal(out.expert_counts, manual)
        assert out.expert_counts.sum() == 32 * 2

    def test_invalid_input_shape(self):
        gate = make_gate()
        with pytest.raises(ValueError):
            gate.forward(np.zeros((2, 3, 8)))

    def test_invalid_topk(self):
        with pytest.raises(ValueError):
            TopKGate(8, 4, 5)


class TestAuxLoss:
    def test_balanced_routing_gives_one(self):
        counts = np.array([10, 10, 10, 10])
        probs = np.full((40, 4), 0.25)
        assert switch_load_balancing_loss(counts, probs) == pytest.approx(1.0)

    def test_concentrated_routing_larger(self):
        counts = np.array([40, 0, 0, 0])
        probs = softmax(np.tile(np.array([5.0, 0, 0, 0]), (40, 1)))
        assert switch_load_balancing_loss(counts, probs) > 1.5

    def test_zero_tokens(self):
        assert switch_load_balancing_loss(np.zeros(4), np.zeros((0, 4))) == 0.0

    def test_aux_loss_reported_by_gate(self):
        gate = make_gate()
        x = np.random.default_rng(5).normal(size=(64, 8))
        out, _ = gate.forward(x)
        # Near-balanced routing keeps the Switch loss close to its optimum of 1.
        assert 0.9 <= out.aux_loss <= 1.5


class TestBackward:
    def test_gate_weight_gradient_matches_numeric(self):
        rng = np.random.default_rng(6)
        gate = make_gate(seed=6)
        x = rng.normal(size=(6, 8))
        upstream = rng.normal(size=(6, 2))

        out, cache = gate.forward(x)
        gate.backward(upstream, aux_loss_weight=0.0, cache=cache)
        analytic = gate.weight.grad.copy()

        def loss_fn():
            out2, _ = gate.forward(x)
            return float(np.sum(out2.gate_weights * upstream))

        eps = 1e-6
        flat = gate.weight.value.reshape(-1)
        grad_flat = analytic.reshape(-1)
        indices = rng.choice(flat.size, size=20, replace=False)
        for idx in indices:
            original = flat[idx]
            flat[idx] = original + eps
            plus = loss_fn()
            flat[idx] = original - eps
            minus = loss_fn()
            flat[idx] = original
            numeric = (plus - minus) / (2 * eps)
            assert np.isclose(grad_flat[idx], numeric, rtol=1e-4, atol=1e-7)

    def test_aux_loss_gradient_matches_numeric(self):
        rng = np.random.default_rng(7)
        gate = make_gate(seed=7)
        x = rng.normal(size=(12, 8))
        weight = 0.5

        gate.zero_grad()
        out, cache = gate.forward(x)
        gate.backward(np.zeros_like(out.gate_weights), aux_loss_weight=weight,
                      cache=cache)
        analytic = gate.weight.grad.copy()

        def loss_fn():
            out2, cache2 = gate.forward(x)
            # Match the backward's treatment: dispatch fractions constant.
            counts = cache["counts"]
            fractions = counts / counts.sum()
            mean_probs = out2.full_probs.mean(axis=0)
            return float(weight * 4 * np.sum(fractions * mean_probs))

        eps = 1e-6
        flat = gate.weight.value.reshape(-1)
        grad_flat = analytic.reshape(-1)
        indices = rng.choice(flat.size, size=16, replace=False)
        for idx in indices:
            original = flat[idx]
            flat[idx] = original + eps
            plus = loss_fn()
            flat[idx] = original - eps
            minus = loss_fn()
            flat[idx] = original
            numeric = (plus - minus) / (2 * eps)
            assert np.isclose(grad_flat[idx], numeric, rtol=1e-3, atol=1e-8)

    def test_aux_weight_zero_means_no_aux_gradient(self):
        gate = make_gate(seed=8)
        x = np.random.default_rng(8).normal(size=(10, 8))
        out, cache = gate.forward(x)
        gate.zero_grad()
        gate.backward(np.zeros_like(out.gate_weights), aux_loss_weight=0.0,
                      cache=cache)
        assert np.allclose(gate.weight.grad, 0.0)
