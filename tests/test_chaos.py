"""Tests for the chaos subsystem (repro.chaos)."""

import json
import os

import pytest

from repro.api import (
    ClusterSpec,
    ExperimentResult,
    ExperimentSpec,
    SystemResult,
    WorkloadSpec,
)
from repro.chaos import (
    CHAOS_PLAN_ENV,
    FAULT_POINTS,
    PLAN_NAMES,
    WORKER_CRASH_POINTS,
    ChaosReport,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InvariantViolation,
    RetryError,
    RetryPolicy,
    build_plan,
    inject,
    install,
    maybe_install_from_env,
    run_chaos,
    store_digest,
    uninstall,
    verify_queue,
    verify_store,
)
from repro.fleet import WorkQueue, launch_fleet
from repro.store import FIXED_CREATED_AT_ENV, ResultStore
from repro.study import make_study


@pytest.fixture(autouse=True)
def no_leaked_injector():
    """Every test starts and ends without a process-wide injector."""
    uninstall()
    yield
    uninstall()


def chaos_spec(name="chaos-test", seed=5, **overrides) -> ExperimentSpec:
    defaults = dict(
        name=name,
        cluster=ClusterSpec(num_nodes=1, devices_per_node=4),
        workload=WorkloadSpec(tokens_per_device=512, layers=1,
                              iterations=2, warmup=1, seed=seed),
        systems=("fsdp_ep",),
        reference="fsdp_ep",
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def fake_result(name: str, seed: int = 5) -> ExperimentResult:
    """A hand-built result (no simulation) for fast store tests."""
    spec = chaos_spec(name=name, seed=seed)
    built = {"fsdp_ep": SystemResult(
        key="fsdp_ep", system="fsdp_ep", throughput=100.0,
        mean_iteration_s=0.5, tokens_per_iteration=4096,
        speedup_vs_reference=1.0, breakdown_s={"expert_compute": 0.25})}
    return ExperimentResult(spec=spec, reference="fsdp_ep",
                            requested_reference="fsdp_ep", systems=built,
                            execution_mode="sequential")


# ----------------------------------------------------------------------
# FaultSpec / FaultPlan
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_spec_round_trips_through_dict(self):
        spec = FaultSpec(point="queue.heartbeat", kind="stall", at=3,
                         times=2, scope="worker-1", max_incarnation=2,
                         delay_s=0.5)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_plan_round_trips_through_file(self, tmp_path):
        plan = FaultPlan(name="p", seed=7, faults=(
            FaultSpec(point="worker.pre-run"),
            FaultSpec(point="store.mid-journal-line", kind="torn-write")))
        path = plan.save(str(tmp_path / "plan.json"))
        assert FaultPlan.load(path) == plan

    def test_unknown_point_and_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultSpec(point="store.no-such-point")
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(point="worker.pre-run", kind="explode")
        with pytest.raises(ValueError, match="1-based"):
            FaultSpec(point="worker.pre-run", at=0)

    def test_every_worker_crash_point_is_registered(self):
        assert set(WORKER_CRASH_POINTS) <= set(FAULT_POINTS)
        assert len(WORKER_CRASH_POINTS) >= 6


class TestFaultInjector:
    def plan(self, *faults):
        return FaultPlan(name="t", faults=tuple(faults))

    def test_fires_on_the_configured_hit_only(self):
        injector = FaultInjector(self.plan(
            FaultSpec(point="store.post-journal", kind="enospc", at=2)))
        injector.fire("store.post-journal", {})  # hit 1: no fault
        with pytest.raises(OSError):
            injector.fire("store.post-journal", {})  # hit 2: fires
        injector.fire("store.post-journal", {})  # hit 3: past the window
        assert injector.hits["store.post-journal"] == 3
        assert len(injector.fired) == 1

    def test_times_widens_the_window(self):
        injector = FaultInjector(self.plan(
            FaultSpec(point="queue.heartbeat", kind="enospc", at=1,
                      times=2)))
        for _ in range(2):
            with pytest.raises(OSError):
                injector.fire("queue.heartbeat", {})
        injector.fire("queue.heartbeat", {})
        assert len(injector.fired) == 2

    def test_scope_restricts_to_one_worker(self):
        fault = FaultSpec(point="worker.pre-run", kind="enospc",
                          scope="worker-1")
        other = FaultInjector(self.plan(fault), scope="worker-2")
        other.fire("worker.pre-run", {})  # no match
        mine = FaultInjector(self.plan(fault), scope="worker-1")
        with pytest.raises(OSError):
            mine.fire("worker.pre-run", {})

    def test_respawned_incarnation_does_not_rearm(self):
        fault = FaultSpec(point="worker.pre-run", kind="enospc",
                          max_incarnation=1)
        respawned = FaultInjector(self.plan(fault), incarnation=1)
        respawned.fire("worker.pre-run", {})  # survives
        assert respawned.fired == []

    def test_corrupt_file_truncates_and_continues(self, tmp_path):
        victim = tmp_path / "run.json"
        victim.write_text("x" * 100)
        injector = FaultInjector(self.plan(
            FaultSpec(point="store.post-run-file", kind="corrupt-file")))
        injector.fire("store.post-run-file", {"path": str(victim)})
        assert victim.stat().st_size == 50
        assert injector.fired[0]["kind"] == "corrupt-file"

    def test_module_hook_is_noop_without_install(self):
        inject("worker.pre-run")  # nothing installed: must not raise

    def test_install_routes_module_hook(self):
        install(FaultInjector(self.plan(
            FaultSpec(point="worker.pre-run", kind="enospc"))))
        with pytest.raises(OSError):
            inject("worker.pre-run")
        uninstall()
        inject("worker.pre-run")

    def test_maybe_install_from_env(self, tmp_path):
        assert maybe_install_from_env(environ={}) is None
        path = FaultPlan(name="p", faults=(
            FaultSpec(point="worker.pre-run"),)).save(
            str(tmp_path / "plan.json"))
        injector = maybe_install_from_env(
            scope="worker-3", environ={CHAOS_PLAN_ENV: path,
                                       "REPRO_CHAOS_INCARNATION": "2"})
        assert injector is not None
        assert injector.scope == "worker-3"
        assert injector.incarnation == 2
        uninstall()
        assert maybe_install_from_env(
            environ={CHAOS_PLAN_ENV: str(tmp_path / "missing.json")}) is None


# ----------------------------------------------------------------------
# RetryPolicy / CircuitBreaker
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_success_needs_no_sleep(self):
        slept = []
        assert RetryPolicy(retries=3).call(
            lambda: 42, sleep=slept.append) == 42
        assert slept == []

    def test_retries_until_success(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ConnectionError("boom")
            return "ok"

        slept = []
        policy = RetryPolicy(retries=5, base_delay_s=0.01, seed=0)
        assert policy.call(flaky, sleep=slept.append) == "ok"
        assert len(attempts) == 3
        assert len(slept) == 2

    def test_exhaustion_raises_retry_error_with_cause(self):
        policy = RetryPolicy(retries=2, base_delay_s=0.0)
        with pytest.raises(RetryError) as excinfo:
            policy.call(lambda: (_ for _ in ()).throw(ValueError("root")),
                        sleep=lambda _: None)
        assert isinstance(excinfo.value.__cause__, ValueError)
        assert "3 attempts" in str(excinfo.value)

    def test_non_retryable_propagates_raw(self):
        with pytest.raises(KeyError):
            RetryPolicy(retries=3).call(
                lambda: (_ for _ in ()).throw(KeyError("nope")),
                retryable=(ConnectionError,), sleep=lambda _: None)

    def test_deadline_stops_early(self):
        attempts = []

        def failing():
            attempts.append(1)
            raise ConnectionError("down")

        policy = RetryPolicy(retries=100, base_delay_s=10.0,
                             max_delay_s=10.0, deadline_s=0.05)
        with pytest.raises(RetryError):
            policy.call(failing, sleep=lambda _: None)
        # The first 10s backoff already overruns the 50ms deadline.
        assert len(attempts) == 1

    def test_seeded_delays_are_reproducible_and_bounded(self):
        policy = RetryPolicy(retries=6, base_delay_s=0.05, max_delay_s=0.4,
                             seed=123)
        first, second = list(policy.delays()), list(policy.delays())
        assert first == second
        assert len(first) == 6
        assert all(0.0 <= delay <= 0.4 for delay in first)
        pure = RetryPolicy(retries=3, base_delay_s=0.1, max_delay_s=10.0,
                           jitter="none")
        assert list(pure.delays()) == [0.1, 0.2, 0.4]

    def test_on_retry_observes_each_backoff(self):
        seen = []
        policy = RetryPolicy(retries=2, base_delay_s=0.01, seed=1)
        with pytest.raises(RetryError):
            policy.call(lambda: (_ for _ in ()).throw(OSError("io")),
                        on_retry=lambda exc, attempt, delay:
                        seen.append((attempt, type(exc).__name__)),
                        sleep=lambda _: None)
        assert seen == [(1, "OSError"), (2, "OSError")]


class TestCircuitBreaker:
    def make(self, threshold=2, cooldown=10.0):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(failure_threshold=threshold,
                                 cooldown_s=cooldown,
                                 clock=lambda: clock["now"])
        return breaker, clock

    def test_opens_after_consecutive_failures(self):
        breaker, _ = self.make()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_half_open_allows_exactly_one_probe(self):
        breaker, clock = self.make()
        breaker.record_failure()
        breaker.record_failure()
        clock["now"] = 11.0
        assert breaker.allow()        # the probe
        assert breaker.state == "half-open"
        assert not breaker.allow()    # second caller is still shed

    def test_probe_success_closes_probe_failure_reopens(self):
        breaker, clock = self.make()
        breaker.record_failure()
        breaker.record_failure()
        clock["now"] = 11.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

        breaker.record_failure()
        breaker.record_failure()
        clock["now"] = 22.0
        assert breaker.allow()
        breaker.record_failure()      # probe failed
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.to_dict()["state"] == "open"


# ----------------------------------------------------------------------
# Invariant checkers
# ----------------------------------------------------------------------
class TestVerifyStore:
    def test_healthy_store_passes(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(fake_result("a"), tags=("x",))
        store.put(fake_result("b"))
        report = verify_store(store)
        assert report.ok
        assert report.check() is report
        assert "invariants: ok" in report.summary()
        assert report.to_dict()["ok"] is True

    def test_corrupt_run_file_is_quarantined_not_fatal(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        run = store.put(fake_result("a"))
        store.put(fake_result("b"))
        store.run_path(run.run_id).write_text("{torn")
        report = verify_store(store)
        assert report.ok
        assert report.counters["corrupt_run_files"] == 1
        assert report.counters["quarantined"] == 1
        assert store.quarantined() == [run.run_id]
        assert (store.quarantine_dir / f"{run.run_id}.json").exists()
        # The quarantined run is out of the index; the healthy one stays.
        assert store.run_ids() == [store.put(fake_result("b")).run_id]

    def test_missing_run_file_is_a_violation(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        run = store.put(fake_result("a"))
        store.run_path(run.run_id).unlink()
        report = verify_store(store)
        assert not report.ok
        assert any("no run file" in violation
                   for violation in report.violations)
        assert "VIOLATED" in report.summary()
        with pytest.raises(InvariantViolation):
            report.check()

    def test_unindexed_run_file_is_recovered(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(fake_result("a"))
        run = store.put(fake_result("b"))
        # Lose the index: only the run files remain (post-crash shape).
        store.journal_path.write_text("")
        store.index_path.unlink(missing_ok=True)
        report = verify_store(store)
        assert report.ok
        assert report.counters["recovered_unindexed_runs"] == 2
        assert run.run_id in store.run_ids()

    def test_digest_is_content_addressed(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FIXED_CREATED_AT_ENV, "1600000000.0")
        first, second = (ResultStore(tmp_path / name) for name in ("a", "b"))
        for store in (first, second):
            store.put(fake_result("same"), tags=("t",))
            store.compact_index()
        assert store_digest(first) == store_digest(second)
        second.put(fake_result("extra"))
        second.compact_index()
        assert store_digest(first) != store_digest(second)


class TestVerifyQueue:
    def test_done_record_without_stored_run_is_lost(self, tmp_path):
        queue = WorkQueue(tmp_path / "queue")
        store = ResultStore(tmp_path / "store")
        queue.done_dir.mkdir(parents=True, exist_ok=True)
        (queue.done_dir / "cell1.json").write_text(json.dumps(
            {"key": "cell1", "run_id": "ghost-123", "worker": "w"}))
        report = verify_queue(queue, store=store)
        assert not report.ok
        assert any("lost run" in violation
                   for violation in report.violations)

    def test_unknown_failure_kind_is_a_violation(self, tmp_path):
        queue = WorkQueue(tmp_path / "queue")
        queue.failed_dir.mkdir(parents=True, exist_ok=True)
        (queue.failed_dir / "cell1.json").write_text(json.dumps(
            {"key": "cell1", "kind": "gremlins", "error": "?"}))
        report = verify_queue(queue)
        assert not report.ok


# ----------------------------------------------------------------------
# Crash-point sweep: SIGKILL a worker at every registered injection
# point; takeover + supervision must lose nothing.
# ----------------------------------------------------------------------
def crash_sweep_study():
    return make_study("sweep-cluster-sizes", sizes=(1, 2),
                      devices_per_node=4, tokens_per_device=512, layers=1,
                      iterations=2, warmup=1, seed=13)


@pytest.mark.parametrize("point", WORKER_CRASH_POINTS)
def test_worker_killed_at_point_loses_nothing(point, tmp_path, monkeypatch):
    kind = "torn-write" if point == "store.mid-journal-line" else "crash"
    plan = FaultPlan(name=f"kill-{point}", faults=(
        FaultSpec(point=point, kind=kind, at=1),))
    plan_path = plan.save(str(tmp_path / "plan.json"))
    monkeypatch.setenv(CHAOS_PLAN_ENV, plan_path)
    monkeypatch.setenv(FIXED_CREATED_AT_ENV, "1600000000.0")
    store = ResultStore(tmp_path / "store")
    report = launch_fleet(crash_sweep_study(), store, workers=2,
                          lease_timeout=1.0, poll_interval=0.05,
                          queue_root=tmp_path / "queue",
                          check=False, respawn_limit=2)
    assert report.failures == []
    assert len(report.executed) == 2
    verify_store(store).check()
    verify_queue(tmp_path / "queue", store=store).check()
    assert len(store) == 2


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------
class TestChaosPlans:
    def test_build_plan_is_deterministic_and_validates(self):
        assert build_plan("worker-crash", seed=4) == \
            build_plan("worker-crash", seed=4)
        assert len(build_plan("worker-crash").faults) == \
            len(WORKER_CRASH_POINTS)
        with pytest.raises(ValueError, match="unknown chaos plan"):
            build_plan("meteor-strike")
        assert set(PLAN_NAMES) == {"worker-crash", "torn-journal",
                                   "serve-degradation", "serve-latency"}
        latency = build_plan("serve-latency")
        assert {fault.point for fault in latency.faults} == \
            {"serve.client-request", "serve.pre-execute"}
        assert {fault.kind for fault in latency.faults} == {"slow", "stall"}

    def test_run_chaos_rejects_nonempty_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(fake_result("occupied"))
        with pytest.raises(ValueError, match="already holds"):
            run_chaos("torn-journal", store.root)

    def test_torn_journal_heals_and_nofault_digest_matches(self, tmp_path):
        injected = run_chaos("torn-journal", tmp_path / "faulted",
                             seed=3, quick=True)
        assert injected.ok, injected.summary()
        assert injected.invariants.counters["quarantined"] >= 1
        assert injected.invariants.counters["journal_skipped_lines"] >= 1
        assert "invariants: ok" in injected.summary()

        clean = run_chaos("torn-journal", tmp_path / "clean",
                          seed=3, quick=True, inject_faults=False)
        assert clean.ok
        # The no-op acceptance: faults changed nothing observable.
        assert clean.digest == injected.digest

    def test_serve_latency_completes_under_slowness(self, tmp_path):
        report = run_chaos("serve-latency", tmp_path / "latency",
                           seed=5, quick=True)
        assert report.ok, report.summary()
        # Every concurrent submission answered despite the latency faults.
        assert report.counters["completed"] == 3
        assert report.counters["client_slow"] >= 1
        assert report.counters["executor_stalls"] >= 1
        assert {"serve.client-request", "serve.pre-execute"} <= \
            set(report.points_exercised)
        round_record = report.rounds[0]
        assert round_record["breaker"]["state"] == "open"
        assert round_record["health"]["status"] == "degraded"

        saved = report.save(tmp_path / "report.json")
        payload = json.loads(saved.read_text())
        assert payload["ok"] is True and payload["plan"] == "serve-latency"
        assert payload["counters"]["completed"] == 3

    def test_chaos_report_summary_flags_failures(self):
        report = ChaosReport(plan="worker-crash", seed=0, injected=True,
                             quick=False, store_root="s")
        report.failures.append("lost a run")
        assert not report.ok
        assert "FAIL" in report.summary()
