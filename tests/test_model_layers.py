"""Tests for the basic numpy layers, including gradient checks."""

import numpy as np
import pytest

from repro.model.layers import (
    Embedding,
    Linear,
    RMSNorm,
    cross_entropy,
    silu,
    silu_backward,
    softmax,
    softmax_backward,
)
from repro.model.parameter import Module, Parameter

from helpers import check_input_gradient, check_parameter_gradients


class TestParameterAndModule:
    def test_parameter_zero_grad(self):
        p = Parameter(np.ones((2, 3)))
        p.accumulate(np.ones((2, 3)))
        assert p.grad.sum() == 6
        p.zero_grad()
        assert p.grad.sum() == 0

    def test_parameter_shape_mismatch(self):
        p = Parameter(np.ones((2, 3)))
        with pytest.raises(ValueError):
            p.accumulate(np.ones((3, 2)))

    def test_module_named_parameters(self):
        layer = Linear(4, 3, bias=True)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}
        assert layer.num_parameters() == 4 * 3 + 3

    def test_module_duplicate_registration(self):
        module = Module()
        module.register_parameter("w", Parameter(np.zeros(2)))
        with pytest.raises(ValueError):
            module.register_parameter("w", Parameter(np.zeros(2)))

    def test_state_dict_roundtrip(self):
        layer = Linear(4, 3, bias=True, rng=np.random.default_rng(1))
        state = layer.state_dict()
        other = Linear(4, 3, bias=True, rng=np.random.default_rng(2))
        other.load_state_dict(state)
        assert np.allclose(other.weight.value, layer.weight.value)

    def test_state_dict_mismatch(self):
        layer = Linear(4, 3)
        with pytest.raises(ValueError):
            layer.load_state_dict({"unknown": np.zeros(1)})


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(5, 7)
        x = np.random.default_rng(0).normal(size=(2, 3, 5))
        out, _ = layer.forward(x)
        assert out.shape == (2, 3, 7)

    def test_bias_applied(self):
        layer = Linear(2, 2, bias=True)
        layer.weight.value = np.zeros((2, 2))
        layer.bias.value = np.array([1.0, 2.0])
        out, _ = layer.forward(np.zeros((1, 2)))
        assert np.allclose(out, [[1.0, 2.0]])

    def test_wrong_input_dim(self):
        layer = Linear(3, 2)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((2, 4)))

    def test_gradients_match_finite_differences(self):
        rng = np.random.default_rng(3)
        layer = Linear(4, 3, bias=True, rng=rng)
        x = rng.normal(size=(5, 4))
        target = rng.normal(size=(5, 3))

        def loss_fn():
            out, _ = layer.forward(x)
            return float(np.sum((out - target) ** 2))

        def backward_fn():
            out, cache = layer.forward(x)
            layer.backward(2 * (out - target), cache)

        check_parameter_gradients(layer, loss_fn, backward_fn)

    def test_input_gradient(self):
        rng = np.random.default_rng(4)
        layer = Linear(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        target = rng.normal(size=(5, 3))
        out, cache = layer.forward(x)
        grad_in = layer.backward(2 * (out - target), cache)

        def forward_loss(inp):
            out2, _ = layer.forward(inp)
            return float(np.sum((out2 - target) ** 2))

        check_input_gradient(forward_loss, grad_in, x)


class TestRMSNorm:
    def test_output_is_normalised(self):
        norm = RMSNorm(8)
        x = np.random.default_rng(0).normal(size=(4, 8)) * 10
        out, _ = norm.forward(x)
        rms = np.sqrt(np.mean(out ** 2, axis=-1))
        assert np.allclose(rms, 1.0, atol=1e-3)

    def test_gradients(self):
        rng = np.random.default_rng(5)
        norm = RMSNorm(6)
        norm.weight.value = rng.normal(1.0, 0.1, size=6)
        x = rng.normal(size=(3, 6))
        target = rng.normal(size=(3, 6))

        def loss_fn():
            out, _ = norm.forward(x)
            return float(np.sum((out - target) ** 2))

        def backward_fn():
            out, cache = norm.forward(x)
            norm.backward(2 * (out - target), cache)

        check_parameter_gradients(norm, loss_fn, backward_fn)

    def test_input_gradient(self):
        rng = np.random.default_rng(6)
        norm = RMSNorm(6)
        x = rng.normal(size=(3, 6))
        target = rng.normal(size=(3, 6))
        out, cache = norm.forward(x)
        grad_in = norm.backward(2 * (out - target), cache)

        def forward_loss(inp):
            out2, _ = norm.forward(inp)
            return float(np.sum((out2 - target) ** 2))

        check_input_gradient(forward_loss, grad_in, x)


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(10, 4)
        out, _ = emb.forward(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)
        assert np.allclose(out[0, 0], emb.weight.value[1])

    def test_out_of_range(self):
        emb = Embedding(10, 4)
        with pytest.raises(ValueError):
            emb.forward(np.array([[10]]))

    def test_gradient_scatter(self):
        emb = Embedding(6, 3)
        tokens = np.array([[0, 1, 0]])
        out, cache = emb.forward(tokens)
        grad = np.ones_like(out)
        emb.backward(grad, cache)
        # Token 0 appears twice, token 1 once, others never.
        assert np.allclose(emb.weight.grad[0], 2.0)
        assert np.allclose(emb.weight.grad[1], 1.0)
        assert np.allclose(emb.weight.grad[2], 0.0)


class TestActivationsAndLosses:
    def test_softmax_sums_to_one(self):
        x = np.random.default_rng(0).normal(size=(4, 7))
        probs = softmax(x)
        assert np.allclose(probs.sum(axis=-1), 1.0)

    def test_softmax_stability_with_large_values(self):
        probs = softmax(np.array([1e4, 1e4 + 1.0]))
        assert np.all(np.isfinite(probs))

    def test_softmax_backward_matches_numeric(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(3, 5))
        upstream = rng.normal(size=(3, 5))
        probs = softmax(x)
        analytic = softmax_backward(upstream, probs)

        def forward_loss(inp):
            return float(np.sum(softmax(inp) * upstream))

        check_input_gradient(forward_loss, analytic, x)

    def test_silu_backward_matches_numeric(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(4, 4))
        upstream = rng.normal(size=(4, 4))
        analytic = silu_backward(upstream, x)

        def forward_loss(inp):
            return float(np.sum(silu(inp) * upstream))

        check_input_gradient(forward_loss, analytic, x)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.zeros((1, 3))
        logits[0, 1] = 100.0
        loss, _ = cross_entropy(logits, np.array([1]))
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_uniform(self):
        logits = np.zeros((1, 4))
        loss, _ = cross_entropy(logits, np.array([2]))
        assert loss == pytest.approx(np.log(4))

    def test_cross_entropy_gradient(self):
        rng = np.random.default_rng(3)
        logits = rng.normal(size=(2, 3, 5))
        targets = rng.integers(0, 5, size=(2, 3))
        _, grad = cross_entropy(logits, targets)

        def forward_loss(inp):
            loss, _ = cross_entropy(inp, targets)
            return loss

        check_input_gradient(forward_loss, grad, logits)

    def test_cross_entropy_rejects_bad_target(self):
        with pytest.raises(ValueError):
            cross_entropy(np.zeros((1, 3)), np.array([3]))
