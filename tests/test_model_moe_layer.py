"""Tests for the dropless MoE layer."""

import numpy as np
import pytest

from repro.model.expert import SwiGLUExpert
from repro.model.moe_layer import MoELayer

from helpers import check_input_gradient


def make_layer(hidden=8, inter=12, experts=4, top_k=2, seed=0):
    return MoELayer(hidden, inter, experts, top_k, rng=np.random.default_rng(seed))


class TestForward:
    def test_output_shape(self):
        layer = make_layer()
        x = np.random.default_rng(0).normal(size=(2, 5, 8))
        out, _ = layer.forward(x)
        assert out.shape == (2, 5, 8)

    def test_dropless_every_token_processed(self):
        """Every (token, k) assignment must be served by exactly one expert."""
        layer = make_layer()
        x = np.random.default_rng(1).normal(size=(2, 8, 8))
        _, cache = layer.forward(x)
        counts = layer.expert_counts(cache)
        assert counts.sum() == 2 * 8 * 2

    def test_output_is_weighted_sum_of_experts(self):
        layer = make_layer(top_k=2)
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 3, 8))
        out, cache = layer.forward(x)
        gating = cache["gating"]
        flat = x.reshape(-1, 8)
        manual = np.zeros_like(flat)
        for t in range(flat.shape[0]):
            for slot in range(2):
                expert = gating.expert_indices[t, slot]
                weight = gating.gate_weights[t, slot]
                expert_out, _ = layer.experts[expert].forward(flat[t:t + 1])
                manual[t] += weight * expert_out[0]
        assert np.allclose(out.reshape(-1, 8), manual, atol=1e-9)

    def test_rejects_wrong_rank(self):
        layer = make_layer()
        with pytest.raises(ValueError):
            layer.forward(np.zeros((5, 8)))

    def test_aux_loss_accessor(self):
        layer = make_layer()
        x = np.random.default_rng(3).normal(size=(2, 16, 8))
        _, cache = layer.forward(x)
        assert layer.aux_loss(cache) >= 1.0 - 1e-6

    def test_flops_per_token(self):
        layer = make_layer(hidden=8, inter=12, experts=4, top_k=2)
        assert layer.flops_per_token() == pytest.approx(2 * 6 * 8 * 12 + 2 * 8 * 4)


class TestBackward:
    def test_input_gradient_matches_numeric(self):
        rng = np.random.default_rng(4)
        layer = make_layer(seed=4)
        x = rng.normal(size=(1, 4, 8))
        target = rng.normal(size=(1, 4, 8))
        out, cache = layer.forward(x)
        grad_in = layer.backward(2 * (out - target), cache)

        def forward_loss(inp):
            out2, _ = layer.forward(inp)
            return float(np.sum((out2 - target) ** 2))

        # Routing is discrete, so only check points where the perturbation does
        # not flip the top-k selection; small eps keeps that true in practice.
        check_input_gradient(forward_loss, grad_in, x, max_elements=20,
                             rtol=1e-3, atol=1e-5)

    def test_expert_parameter_gradients_accumulate(self):
        layer = make_layer(seed=5)
        x = np.random.default_rng(5).normal(size=(2, 6, 8))
        out, cache = layer.forward(x)
        layer.zero_grad()
        layer.backward(np.ones_like(out), cache)
        used_experts = set(np.unique(cache["gating"].expert_indices))
        for expert_id, expert in enumerate(layer.experts):
            grads = np.concatenate([p.grad.reshape(-1) for p in expert.parameters()])
            if expert_id in used_experts:
                assert np.abs(grads).sum() > 0
            else:
                assert np.abs(grads).sum() == 0

    def test_gate_receives_gradient(self):
        layer = make_layer(seed=6)
        x = np.random.default_rng(6).normal(size=(2, 6, 8))
        out, cache = layer.forward(x)
        layer.zero_grad()
        layer.backward(np.ones_like(out), cache)
        assert np.abs(layer.gate.weight.grad).sum() > 0

    def test_backward_with_aux_loss_changes_gate_grad(self):
        layer = make_layer(seed=7)
        x = np.random.default_rng(7).normal(size=(2, 8, 8))
        out, cache = layer.forward(x)
        layer.zero_grad()
        layer.backward(np.zeros_like(out), cache, aux_loss_weight=0.0)
        grad_no_aux = layer.gate.weight.grad.copy()
        layer.zero_grad()
        layer.backward(np.zeros_like(out), cache, aux_loss_weight=1.0)
        grad_aux = layer.gate.weight.grad.copy()
        assert not np.allclose(grad_no_aux, grad_aux)
