"""Tests for the synthetic token datasets."""

import numpy as np
import pytest

from repro.workloads.datasets import (
    C4_LIKE,
    DatasetConfig,
    SyntheticTextDataset,
    WIKITEXT_LIKE,
    get_dataset,
)


class TestDatasetConfig:
    def test_presets_differ(self):
        assert WIKITEXT_LIKE.vocab_size != C4_LIKE.vocab_size

    def test_validation(self):
        with pytest.raises(ValueError):
            DatasetConfig(name="bad", vocab_size=2)
        with pytest.raises(ValueError):
            DatasetConfig(name="bad", zipf_exponent=0.0)
        with pytest.raises(ValueError):
            DatasetConfig(name="bad", num_states=0)


class TestSampling:
    def test_batch_shapes(self):
        ds = SyntheticTextDataset(WIKITEXT_LIKE)
        inputs, targets = ds.batch(batch_size=3, seq_length=16)
        assert inputs.shape == (3, 16)
        assert targets.shape == (3, 16)

    def test_tokens_in_vocab(self):
        ds = SyntheticTextDataset(WIKITEXT_LIKE)
        inputs, targets = ds.batch(batch_size=4, seq_length=32)
        assert inputs.min() >= 0 and inputs.max() < WIKITEXT_LIKE.vocab_size
        assert targets.min() >= 0 and targets.max() < WIKITEXT_LIKE.vocab_size

    def test_targets_shift_inputs(self):
        """The target at position t is the input at position t+1."""
        ds = SyntheticTextDataset(WIKITEXT_LIKE)
        inputs, targets = ds.batch(batch_size=2, seq_length=16, seed=7)
        assert np.array_equal(inputs[:, 1:], targets[:, :-1])

    def test_seeded_batches_reproducible(self):
        ds1 = SyntheticTextDataset(WIKITEXT_LIKE)
        ds2 = SyntheticTextDataset(WIKITEXT_LIKE)
        b1 = ds1.batch(2, 8, seed=123)
        b2 = ds2.batch(2, 8, seed=123)
        assert np.array_equal(b1[0], b2[0])

    def test_unigram_distribution_is_heavy_tailed(self):
        """A few tokens should account for a large share of the stream."""
        ds = SyntheticTextDataset(WIKITEXT_LIKE)
        inputs, _ = ds.batch(batch_size=16, seq_length=128, seed=1)
        counts = np.bincount(inputs.reshape(-1), minlength=WIKITEXT_LIKE.vocab_size)
        counts = np.sort(counts)[::-1]
        top_decile = counts[:WIKITEXT_LIKE.vocab_size // 10].sum()
        assert top_decile / counts.sum() > 0.3

    def test_batches_iterator(self):
        ds = SyntheticTextDataset(WIKITEXT_LIKE)
        batches = list(ds.batches(num_batches=3, batch_size=2, seq_length=8))
        assert len(batches) == 3

    def test_invalid_args(self):
        ds = SyntheticTextDataset(WIKITEXT_LIKE)
        with pytest.raises(ValueError):
            ds.batch(0, 8)
        with pytest.raises(ValueError):
            ds.sample_sequence(0)


class TestGetDataset:
    def test_known_names(self):
        assert get_dataset("wikitext").config.name == "wikitext"
        assert get_dataset("WikiText-103").config.name == "wikitext"
        assert get_dataset("c4").config.name == "c4"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_dataset("imagenet")
